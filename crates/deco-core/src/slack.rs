//! Lemma 4.2 — reducing slack-1 (list size `deg(e)+1`) instances to
//! slack-β instances.
//!
//! One *sweep* implements steps 2–3 of the Lemma 4.2 algorithm:
//!
//! 1. compute a `deg(e)/2β`-defective edge coloring with `O(β²)` classes;
//! 2. iterate over the classes; in class `i`, every member edge removes the
//!    colors already used by its neighbors from its list, marks itself
//!    *active* if more than `deg(e)/2` colors remain, and the active
//!    subgraph — whose defective degree is ≤ `deg(e)/2β`, so every active
//!    list has slack > β — is handed to the slack-β solver;
//! 3. edges left uncolored are returned to the caller, which recurses on
//!    the residual instance ([`residual_after_sweep`]); the residual maximum
//!    edge degree provably halves.
//!
//! The caller (the Theorem 4.1 solver) loops sweeps until everything is
//! colored, giving
//! `T(Δ̄,1,C) ≤ O(β²·log Δ̄)·T(Δ̄,β,C) + O(log Δ̄·log* X)`.
//!
//! ## Parallel class execution
//!
//! The class iteration carries a data dependency only between *adjacent*
//! classes: class `j`'s residual lists read the colors of neighboring edges
//! colored by earlier classes `i < j`, and nothing else. [`sweep`] therefore
//! schedules the classes in dependency *wavefronts* — class `j` joins wave
//! `1 + max(wave(i))` over earlier classes `i` adjacent to it (wave 0 if
//! none) — and hands each wave's slack-β solves to
//! [`Executor::execute_branches`]. Classes in one wave are mutually
//! non-adjacent, so their residual-list reads and color writes cannot
//! interact, and every class still observes exactly the colors it would
//! have observed in the serial class-order iteration: colors, statistics,
//! and the cost tree are bit-identical for every executor and thread count.

use crate::defective::{defective_edge_coloring, defective_palette};
use crate::instance::ListInstance;
use crate::lists::ColorList;
use crate::solver::{SolveBranch, SolveError, SolveStats};
use deco_graph::coloring::Color;
use deco_graph::{EdgeId, EdgeSubgraph};
use deco_local::{CostNode, Executor};
use deco_runtime::Runtime;

/// The inner solver a sweep hands active classes to. Receives a slack-β
/// instance together with its restricted initial `X`-edge-coloring, and must
/// return a complete valid coloring plus its cost and recursion stats
/// ([`SolveBranch`]). Classes of one wavefront solve concurrently, hence
/// `Fn + Sync`; errors propagate through the sweep.
pub type InnerSolver<'a> =
    dyn Fn(&ListInstance, &[u32]) -> Result<SolveBranch, SolveError> + Sync + 'a;

/// Statistics of one Lemma 4.2 sweep, used by the experiment harness to
/// verify the lemma's inequalities empirically.
#[derive(Debug, Clone, Default)]
pub struct SweepStats {
    /// Defective palette size (total classes, empty or not) — the `O(β²)`.
    pub classes_total: u64,
    /// Classes that actually contained uncolored edges.
    pub classes_nonempty: u64,
    /// Edges colored by inner solvers during the sweep.
    pub colored: usize,
    /// Edges that were members of a processed class but inactive.
    pub inactive: usize,
    /// Minimum observed slack `|L′_e| / deg′(e)` among active edges with
    /// positive active degree (must exceed β; ∞ if none).
    pub min_active_slack: f64,
    /// Messages delivered by the sweep's own protocol runs (the defective
    /// coloring's conflict-path 3-coloring; the inner solves report theirs
    /// through [`SweepOutcome::inner_stats`]). Identical on every engine.
    pub messages: u64,
}

/// Result of one sweep over the defective classes.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// Per-edge colors assigned during this sweep (`None` = still open).
    pub colors: Vec<Option<Color>>,
    /// Round cost of the sweep (defective coloring + per-class work).
    pub cost: CostNode,
    /// Verification statistics.
    pub stats: SweepStats,
    /// Recursion stats of the inner (slack-β) solves, merged in class
    /// order — the caller folds these into its own frame.
    pub inner_stats: SolveStats,
}

/// A class whose active sub-instance is ready to solve: everything the
/// inner solver needs, captured before its wave fans out.
struct PreparedClass {
    /// Index into the class-ordered bucket list.
    bucket: usize,
    /// The defective class color (for cost labels).
    class: u32,
    /// The slack-β active sub-instance.
    sub_inst: ListInstance,
    /// Restricted initial `X`-coloring.
    sub_x: Vec<u32>,
    /// Sub-instance edge → parent edge.
    edge_map: Vec<EdgeId>,
}

/// Runs one Lemma 4.2 sweep on `inst` with parameter `beta`, using `inner`
/// to solve each active class (a slack-β instance). Classes are scheduled
/// in dependency wavefronts (see the module docs); each wave's inner solves
/// run as parallel branches on `executor`, observationally identical to the
/// serial class-order iteration.
///
/// # Errors
///
/// Propagates the first inner-solver error in wave order (class order
/// within a wave). This is deterministic for every executor; note it can
/// differ from strict class order only when classes in *different* waves
/// fail in the same sweep — with the current error kind
/// (`SolveError::DepthExceeded`), every inner solve of a sweep runs at the
/// same depth, so all simultaneous failures carry the same value and the
/// propagated error is identical to the serial iteration's either way.
///
/// # Panics
///
/// Panics if an invariant of the lemma fails: an active class without
/// slack > β, or an inner solution that is improper or off-list.
pub fn sweep(
    inst: &ListInstance,
    x_coloring: &[u32],
    x_palette: u32,
    beta: u32,
    rt: &Runtime,
    inner: &InnerSolver<'_>,
) -> Result<SweepOutcome, SolveError> {
    let _sweep_span = deco_trace::span(deco_trace::Phase::Sweep);
    let g = inst.graph();
    let m = g.num_edges();
    let defective = defective_edge_coloring(g, beta, x_coloring, x_palette, rt);
    let num_classes = defective_palette(beta);

    // Bucket edges by defective class; the ascending class order is the
    // serial processing order that defines the observable behavior (empty
    // classes cost schedule rounds but no work — the budget side is
    // accounted in `budget.rs`). Buckets are sparse: with the paper's β the
    // palette is far larger than the edge count.
    let mut bucket_map: std::collections::BTreeMap<u32, Vec<EdgeId>> =
        std::collections::BTreeMap::new();
    for e in g.edges() {
        bucket_map
            .entry(defective.colors[e.index()])
            .or_default()
            .push(e);
    }
    let buckets: Vec<(u32, Vec<EdgeId>)> = bucket_map.into_iter().collect();

    // Wavefront schedule: class j depends on class i < j exactly when some
    // member of j neighbors a member of i (j's residual lists read i's
    // colors). wave(j) = 1 + max wave over dependencies, 0 if independent.
    let mut bucket_of: Vec<usize> = vec![usize::MAX; m];
    for (j, (_, members)) in buckets.iter().enumerate() {
        for &e in members {
            bucket_of[e.index()] = j;
        }
    }
    let mut wave_of: Vec<usize> = vec![0; buckets.len()];
    let mut num_waves = 0usize;
    for (j, (_, members)) in buckets.iter().enumerate() {
        let mut wave = 0usize;
        for &e in members {
            for f in g.edge_neighbors(e) {
                let i = bucket_of[f.index()];
                if i < j {
                    wave = wave.max(wave_of[i] + 1);
                }
            }
        }
        wave_of[j] = wave;
        num_waves = num_waves.max(wave + 1);
    }

    let mut colors: Vec<Option<Color>> = vec![None; m];
    let mut stats = SweepStats {
        classes_total: u64::from(num_classes),
        min_active_slack: f64::INFINITY,
        messages: defective.messages,
        ..SweepStats::default()
    };
    // Per-bucket results, assembled in class order after the waves so the
    // outcome is independent of wave interleaving.
    let mut class_costs: Vec<Option<CostNode>> = (0..buckets.len()).map(|_| None).collect();
    let mut class_stats: Vec<Option<SolveStats>> = vec![None; buckets.len()];

    for wave in 0..num_waves {
        // Step 3(a)+(b), for every class of this wave: residual lists
        // against already-colored neighbors (all in earlier waves, hence
        // complete); actives have |L′| > deg(e)/2. Learning neighbor colors
        // costs one round.
        let mut prepared: Vec<PreparedClass> = Vec::new();
        for (j, (class, members)) in buckets.iter().enumerate() {
            if wave_of[j] != wave {
                continue;
            }
            debug_assert!(!members.is_empty(), "buckets are created non-empty");
            stats.classes_nonempty += 1;
            let mut active: Vec<EdgeId> = Vec::new();
            let mut active_lists: Vec<ColorList> = Vec::new();
            for &e in members {
                let mut list = inst.list(e).clone();
                let used: Vec<Color> = g
                    .edge_neighbors(e)
                    .filter_map(|f| colors[f.index()])
                    .collect();
                list.remove_all(&used);
                if list.len() as f64 > g.edge_degree(e) as f64 / 2.0 {
                    active.push(e);
                    active_lists.push(list);
                } else {
                    stats.inactive += 1;
                }
            }
            if active.is_empty() {
                class_costs[j] = Some(CostNode::leaf(format!("class {class}: learn colors"), 1));
                continue;
            }

            let sub = EdgeSubgraph::from_edge_ids(g, &active);
            let sub_inst =
                ListInstance::new_unchecked(sub.graph().clone(), active_lists, inst.palette());
            // Invariant (paper, "Enough slack"): |L′_e| > β·deg′(e).
            for se in sub_inst.graph().edges() {
                let deg_sub = sub_inst.graph().edge_degree(se);
                let len = sub_inst.list(se).len();
                assert!(
                    len as f64 > beta as f64 * deg_sub as f64,
                    "active edge lost its slack: |L'|={len}, β·deg'={}",
                    beta as usize * deg_sub
                );
                if deg_sub > 0 {
                    stats.min_active_slack =
                        stats.min_active_slack.min(len as f64 / deg_sub as f64);
                }
            }
            let sub_x: Vec<u32> = sub
                .edge_map()
                .iter()
                .map(|pe| x_coloring[pe.index()])
                .collect();
            stats.colored += active.len();
            prepared.push(PreparedClass {
                bucket: j,
                class: *class,
                sub_inst,
                sub_x,
                edge_map: sub.edge_map().to_vec(),
            });
        }

        // Step 3(c): solve P(Δ̄/2β, β, C) on each active subgraph. The
        // classes of one wave are mutually non-adjacent, so their solves
        // are independent branches; results come back in class order.
        let weights: Vec<usize> = prepared
            .iter()
            .map(|p| p.sub_inst.graph().num_edges())
            .collect();
        let results = rt.execute_branches(&weights, |k| {
            let _span = deco_trace::span(deco_trace::Phase::SolverBranch);
            let p = &prepared[k];
            inner(&p.sub_inst, &p.sub_x)
        });
        for (p, result) in prepared.iter().zip(results) {
            let branch = result?;
            debug_assert!(
                p.sub_inst
                    .check_solution(&deco_graph::coloring::EdgeColoring::from_complete(
                        branch.colors.clone()
                    ))
                    .is_ok(),
                "inner solver returned an invalid coloring"
            );
            for (idx, &pe) in p.edge_map.iter().enumerate() {
                colors[pe.index()] = Some(branch.colors[idx]);
            }
            class_stats[p.bucket] = Some(branch.stats);
            class_costs[p.bucket] = Some(CostNode::seq(
                format!("class {}: learn + solve slack-β", p.class),
                vec![CostNode::leaf("learn neighbor colors", 1), branch.cost],
            ));
        }
    }

    // Merge the inner recursion stats in class order (deterministic; every
    // field is commutative, so this equals any execution order).
    let mut inner_stats = SolveStats::default();
    for s in class_stats.into_iter().flatten() {
        inner_stats.merge(&s);
    }

    debug_assert!(
        deco_graph::coloring::check_partial_edge_coloring(
            g,
            &deco_graph::coloring::EdgeColoring::from_vec(colors.clone())
        )
        .is_ok(),
        "sweep produced adjacent same-colored edges"
    );

    let cost = CostNode::seq(
        format!("lemma-4.2 sweep(β={beta})"),
        std::iter::once(defective.cost.clone())
            .chain(
                class_costs
                    .into_iter()
                    .map(|c| c.expect("every nonempty class produced a cost node")),
            )
            .collect(),
    );
    Ok(SweepOutcome {
        colors,
        cost,
        stats,
        inner_stats,
    })
}

/// Residual instance after a sweep: the uncolored subgraph with lists
/// reduced by the colors of colored neighbors.
#[derive(Debug, Clone)]
pub struct Residual {
    /// The residual instance (again a (deg+1)-list instance).
    pub instance: ListInstance,
    /// Map from residual edge ids to the swept instance's edge ids.
    pub edge_map: Vec<EdgeId>,
    /// The initial `X`-coloring restricted to the residual edges.
    pub x_coloring: Vec<u32>,
}

/// Builds the residual instance from a partial coloring of `inst`.
///
/// The returned instance satisfies the (deg+1)-list property: a colored
/// neighbor removes at most one list color *and* one unit of degree.
///
/// # Panics
///
/// Panics if the residual violates the (deg+1)-list property (which would
/// indicate the partial coloring was not produced honestly).
pub fn residual_after_sweep(
    inst: &ListInstance,
    x_coloring: &[u32],
    colors: &[Option<Color>],
) -> Residual {
    let g = inst.graph();
    let open: Vec<EdgeId> = g.edges().filter(|e| colors[e.index()].is_none()).collect();
    let sub = EdgeSubgraph::from_edge_ids(g, &open);
    let mut lists = Vec::with_capacity(open.len());
    for &e in &open {
        let mut list = inst.list(e).clone();
        let used: Vec<Color> = g
            .edge_neighbors(e)
            .filter_map(|f| colors[f.index()])
            .collect();
        list.remove_all(&used);
        lists.push(list);
    }
    let instance = ListInstance::new_unchecked(sub.graph().clone(), lists, inst.palette());
    assert!(
        instance.validate_slack(1.0).is_ok(),
        "residual instance must remain a (deg+1)-list instance"
    );
    let x_restricted: Vec<u32> = sub
        .edge_map()
        .iter()
        .map(|pe| x_coloring[pe.index()])
        .collect();
    Residual {
        instance,
        edge_map: sub.edge_map().to_vec(),
        x_coloring: x_restricted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance;
    use deco_algos::edge_adapter;
    use deco_graph::generators;

    fn x_for(g: &deco_graph::Graph) -> (Vec<u32>, u32) {
        let ids: Vec<u64> = (1..=g.num_nodes() as u64).collect();
        let res = edge_adapter::linial_edge_coloring(g, &ids, &Runtime::serial()).unwrap();
        (
            g.edges().map(|e| res.coloring.get(e).unwrap()).collect(),
            res.palette as u32,
        )
    }

    /// An inner "solver" that greedily colors the slack-β instance — valid
    /// for tests because slack > β ≥ 1 implies (deg+1)-lists.
    fn greedy_inner(inst: &ListInstance, _x: &[u32]) -> Result<SolveBranch, SolveError> {
        let lists: Vec<Vec<Color>> = inst.lists().iter().map(|l| l.as_slice().to_vec()).collect();
        let coloring = deco_algos::greedy::greedy_list_edge_coloring(
            inst.graph(),
            &lists,
            deco_algos::greedy::EdgeOrder::ById,
        )
        .expect("slack-β instances are greedily solvable");
        let colors: Vec<Color> = inst
            .graph()
            .edges()
            .map(|e| coloring.get(e).unwrap())
            .collect();
        Ok(SolveBranch {
            colors,
            cost: CostNode::leaf("greedy-inner", 1),
            stats: SolveStats {
                base_cases: 1,
                ..SolveStats::default()
            },
        })
    }

    #[test]
    fn sweep_colors_edges_and_respects_invariants() {
        let g = generators::random_regular(30, 6, 1);
        let inst = instance::two_delta_minus_one(&g);
        let (xc, xp) = x_for(&g);
        let out = sweep(&inst, &xc, xp, 1, &Runtime::serial(), &greedy_inner).unwrap();
        // Inner stats merged once per class that reached the inner solver.
        assert!(out.inner_stats.base_cases > 0);
        assert!(out.inner_stats.base_cases <= out.stats.classes_nonempty);
        assert!(out.stats.colored > 0, "a sweep must make progress");
        assert!(out.stats.min_active_slack > 1.0);
        assert_eq!(out.stats.classes_total, u64::from(defective_palette(1)));
        // Partial coloring is proper and on-list.
        for e in g.edges() {
            if let Some(c) = out.colors[e.index()] {
                assert!(inst.list(e).contains(c));
            }
        }
    }

    #[test]
    fn residual_degree_halves() {
        let g = generators::random_regular(40, 8, 2);
        let inst = instance::two_delta_minus_one(&g);
        let (xc, xp) = x_for(&g);
        let out = sweep(&inst, &xc, xp, 1, &Runtime::serial(), &greedy_inner).unwrap();
        let res = residual_after_sweep(&inst, &xc, &out.colors);
        let dbar = inst.max_edge_degree();
        assert!(
            res.instance.max_edge_degree() <= dbar / 2,
            "residual Δ̄ {} must be ≤ Δ̄/2 = {}",
            res.instance.max_edge_degree(),
            dbar / 2
        );
    }

    #[test]
    fn repeated_sweeps_terminate() {
        let g = generators::gnp(40, 0.25, 3);
        let mut inst = instance::two_delta_minus_one(&g);
        let (mut xc, xp) = x_for(&g);
        let mut final_colors: Vec<Option<Color>> = vec![None; g.num_edges()];
        let mut maps: Vec<EdgeId> = g.edges().collect();
        let mut sweeps = 0;
        while inst.graph().num_edges() > 0 {
            let out = sweep(&inst, &xc, xp, 1, &Runtime::serial(), &greedy_inner).unwrap();
            for (local, &orig) in maps.iter().enumerate() {
                if let Some(c) = out.colors[local] {
                    final_colors[orig.index()] = Some(c);
                }
            }
            let res = residual_after_sweep(&inst, &xc, &out.colors);
            maps = res.edge_map.iter().map(|&le| maps[le.index()]).collect();
            inst = res.instance;
            xc = res.x_coloring;
            sweeps += 1;
            assert!(sweeps <= 2 + (g.max_edge_degree() as f64).log2().ceil() as u32 + 1);
        }
        // Full coloring is proper and on-list.
        let full = deco_graph::coloring::EdgeColoring::from_vec(final_colors);
        let orig_inst = instance::two_delta_minus_one(&g);
        orig_inst
            .check_solution(&full)
            .expect("complete proper list coloring");
    }

    /// Reference oracle: the historical strictly-sequential class-order
    /// iteration, reimplemented verbatim. The wavefront schedule must
    /// reproduce its colors exactly.
    fn serial_class_order_sweep(
        inst: &ListInstance,
        beta: u32,
        x_coloring: &[u32],
        x_palette: u32,
    ) -> Vec<Option<Color>> {
        let g = inst.graph();
        let defective = defective_edge_coloring(g, beta, x_coloring, x_palette, &Runtime::serial());
        let mut buckets: std::collections::BTreeMap<u32, Vec<EdgeId>> =
            std::collections::BTreeMap::new();
        for e in g.edges() {
            buckets
                .entry(defective.colors[e.index()])
                .or_default()
                .push(e);
        }
        let mut colors: Vec<Option<Color>> = vec![None; g.num_edges()];
        for members in buckets.values() {
            let mut active: Vec<EdgeId> = Vec::new();
            let mut active_lists: Vec<ColorList> = Vec::new();
            for &e in members {
                let mut list = inst.list(e).clone();
                let used: Vec<Color> = g
                    .edge_neighbors(e)
                    .filter_map(|f| colors[f.index()])
                    .collect();
                list.remove_all(&used);
                if list.len() as f64 > g.edge_degree(e) as f64 / 2.0 {
                    active.push(e);
                    active_lists.push(list);
                }
            }
            if active.is_empty() {
                continue;
            }
            let sub = EdgeSubgraph::from_edge_ids(g, &active);
            let sub_inst =
                ListInstance::new_unchecked(sub.graph().clone(), active_lists, inst.palette());
            let sub_x: Vec<u32> = sub
                .edge_map()
                .iter()
                .map(|pe| x_coloring[pe.index()])
                .collect();
            let branch = greedy_inner(&sub_inst, &sub_x).unwrap();
            for (idx, &pe) in sub.edge_map().iter().enumerate() {
                colors[pe.index()] = Some(branch.colors[idx]);
            }
        }
        colors
    }

    #[test]
    fn wavefront_schedule_matches_serial_class_order() {
        for (g, beta) in [
            (generators::random_regular(40, 8, 5), 1u32),
            (generators::gnp(50, 0.15, 6), 1),
            (generators::gnp(50, 0.15, 6), 2),
            (generators::complete(12), 1),
            // Disconnected: two clusters give genuinely independent classes,
            // so waves really do hold more than one class.
            (
                {
                    let a = generators::random_regular(20, 4, 7);
                    generators::disjoint_union(&[a.clone(), a])
                },
                1,
            ),
        ] {
            let inst = instance::two_delta_minus_one(&g);
            let (xc, xp) = x_for(&g);
            let out = sweep(&inst, &xc, xp, beta, &Runtime::serial(), &greedy_inner).unwrap();
            let oracle = serial_class_order_sweep(&inst, beta, &xc, xp);
            assert_eq!(out.colors, oracle, "wavefront must be invisible");
        }
    }

    #[test]
    fn sweep_on_empty_graph() {
        let g = deco_graph::Graph::empty(3);
        let inst = instance::two_delta_minus_one(&g);
        let out = sweep(&inst, &[], 2, 1, &Runtime::serial(), &greedy_inner).unwrap();
        assert_eq!(out.stats.classes_nonempty, 0);
        assert_eq!(out.colors.len(), 0);
    }

    #[test]
    fn residual_lists_shrink_with_neighbors() {
        // Path of 3 edges; color the middle edge, residual lists of the two
        // outer edges must drop that color.
        let g = generators::path(4);
        let inst = instance::two_delta_minus_one(&g);
        let colors = vec![None, Some(1), None];
        let res = residual_after_sweep(&inst, &[0, 1, 2], &colors);
        assert_eq!(res.instance.graph().num_edges(), 2);
        for e in res.instance.graph().edges() {
            assert!(!res.instance.list(e).contains(1));
        }
    }
}
