//! Lemma 4.2 — reducing slack-1 (list size `deg(e)+1`) instances to
//! slack-β instances.
//!
//! One *sweep* implements steps 2–3 of the Lemma 4.2 algorithm:
//!
//! 1. compute a `deg(e)/2β`-defective edge coloring with `O(β²)` classes;
//! 2. iterate over the classes; in class `i`, every member edge removes the
//!    colors already used by its neighbors from its list, marks itself
//!    *active* if more than `deg(e)/2` colors remain, and the active
//!    subgraph — whose defective degree is ≤ `deg(e)/2β`, so every active
//!    list has slack > β — is handed to the slack-β solver;
//! 3. edges left uncolored are returned to the caller, which recurses on
//!    the residual instance ([`residual_after_sweep`]); the residual maximum
//!    edge degree provably halves.
//!
//! The caller (the Theorem 4.1 solver) loops sweeps until everything is
//! colored, giving
//! `T(Δ̄,1,C) ≤ O(β²·log Δ̄)·T(Δ̄,β,C) + O(log Δ̄·log* X)`.

use crate::defective::{defective_edge_coloring, defective_palette};
use crate::instance::ListInstance;
use crate::lists::ColorList;
use deco_graph::coloring::Color;
use deco_graph::{EdgeId, EdgeSubgraph};
use deco_local::CostNode;

/// The inner solver a sweep hands active classes to. Receives a slack-β
/// instance together with its restricted initial `X`-edge-coloring, and must
/// return a complete valid coloring plus its round cost.
pub type InnerSolver<'a> = dyn FnMut(&ListInstance, &[u32]) -> (Vec<Color>, CostNode) + 'a;

/// Statistics of one Lemma 4.2 sweep, used by the experiment harness to
/// verify the lemma's inequalities empirically.
#[derive(Debug, Clone, Default)]
pub struct SweepStats {
    /// Defective palette size (total classes, empty or not) — the `O(β²)`.
    pub classes_total: u64,
    /// Classes that actually contained uncolored edges.
    pub classes_nonempty: u64,
    /// Edges colored by inner solvers during the sweep.
    pub colored: usize,
    /// Edges that were members of a processed class but inactive.
    pub inactive: usize,
    /// Minimum observed slack `|L′_e| / deg′(e)` among active edges with
    /// positive active degree (must exceed β; ∞ if none).
    pub min_active_slack: f64,
}

/// Result of one sweep over the defective classes.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// Per-edge colors assigned during this sweep (`None` = still open).
    pub colors: Vec<Option<Color>>,
    /// Round cost of the sweep (defective coloring + per-class work).
    pub cost: CostNode,
    /// Verification statistics.
    pub stats: SweepStats,
}

/// Runs one Lemma 4.2 sweep on `inst` with parameter `beta`, using `inner`
/// to solve each active class (a slack-β instance).
///
/// # Panics
///
/// Panics if an invariant of the lemma fails: an active class without
/// slack > β, or an inner solution that is improper or off-list.
pub fn sweep(
    inst: &ListInstance,
    x_coloring: &[u32],
    x_palette: u32,
    beta: u32,
    inner: &mut InnerSolver<'_>,
) -> SweepOutcome {
    let g = inst.graph();
    let m = g.num_edges();
    let defective = defective_edge_coloring(g, beta, x_coloring, x_palette);
    let num_classes = defective_palette(beta);

    // Bucket edges by defective class; iterate nonempty classes in class
    // order (empty classes cost schedule rounds but no work — the budget
    // side is accounted in `budget.rs`). Buckets are sparse: with the
    // paper's β the palette is far larger than the edge count.
    let mut buckets: std::collections::BTreeMap<u32, Vec<EdgeId>> =
        std::collections::BTreeMap::new();
    for e in g.edges() {
        buckets
            .entry(defective.colors[e.index()])
            .or_default()
            .push(e);
    }

    let mut colors: Vec<Option<Color>> = vec![None; m];
    let mut stats = SweepStats {
        classes_total: u64::from(num_classes),
        min_active_slack: f64::INFINITY,
        ..SweepStats::default()
    };
    let mut class_costs: Vec<CostNode> = Vec::new();

    for (&class, members) in buckets.iter() {
        debug_assert!(!members.is_empty(), "buckets are created non-empty");
        stats.classes_nonempty += 1;
        // Step 3(a)+(b): residual lists against already-colored neighbors;
        // actives have |L′| > deg(e)/2. Learning neighbor colors costs one
        // round.
        let mut active: Vec<EdgeId> = Vec::new();
        let mut active_lists: Vec<ColorList> = Vec::new();
        for &e in members {
            let mut list = inst.list(e).clone();
            let used: Vec<Color> = g
                .edge_neighbors(e)
                .filter_map(|f| colors[f.index()])
                .collect();
            list.remove_all(&used);
            if list.len() as f64 > g.edge_degree(e) as f64 / 2.0 {
                active.push(e);
                active_lists.push(list);
            } else {
                stats.inactive += 1;
            }
        }
        if active.is_empty() {
            class_costs.push(CostNode::leaf(format!("class {class}: learn colors"), 1));
            continue;
        }

        // Step 3(c): solve P(Δ̄/2β, β, C) on the active subgraph.
        let sub = EdgeSubgraph::from_edge_ids(g, &active);
        let sub_inst =
            ListInstance::new_unchecked(sub.graph().clone(), active_lists, inst.palette());
        // Invariant (paper, "Enough slack"): |L′_e| > β·deg′(e).
        for se in sub_inst.graph().edges() {
            let deg_sub = sub_inst.graph().edge_degree(se);
            let len = sub_inst.list(se).len();
            assert!(
                len as f64 > beta as f64 * deg_sub as f64,
                "active edge lost its slack: |L'|={len}, β·deg'={}",
                beta as usize * deg_sub
            );
            if deg_sub > 0 {
                stats.min_active_slack = stats.min_active_slack.min(len as f64 / deg_sub as f64);
            }
        }
        let sub_x: Vec<u32> = sub
            .edge_map()
            .iter()
            .map(|pe| x_coloring[pe.index()])
            .collect();
        let (sub_colors, sub_cost) = inner(&sub_inst, &sub_x);
        debug_assert!(
            sub_inst
                .check_solution(&deco_graph::coloring::EdgeColoring::from_complete(
                    sub_colors.clone()
                ))
                .is_ok(),
            "inner solver returned an invalid coloring"
        );
        for (idx, &pe) in sub.edge_map().iter().enumerate() {
            colors[pe.index()] = Some(sub_colors[idx]);
        }
        stats.colored += active.len();
        class_costs.push(CostNode::seq(
            format!("class {class}: learn + solve slack-β"),
            vec![CostNode::leaf("learn neighbor colors", 1), sub_cost],
        ));
    }

    debug_assert!(
        deco_graph::coloring::check_partial_edge_coloring(
            g,
            &deco_graph::coloring::EdgeColoring::from_vec(colors.clone())
        )
        .is_ok(),
        "sweep produced adjacent same-colored edges"
    );

    let cost = CostNode::seq(
        format!("lemma-4.2 sweep(β={beta})"),
        std::iter::once(defective.cost.clone())
            .chain(class_costs)
            .collect(),
    );
    SweepOutcome {
        colors,
        cost,
        stats,
    }
}

/// Residual instance after a sweep: the uncolored subgraph with lists
/// reduced by the colors of colored neighbors.
#[derive(Debug, Clone)]
pub struct Residual {
    /// The residual instance (again a (deg+1)-list instance).
    pub instance: ListInstance,
    /// Map from residual edge ids to the swept instance's edge ids.
    pub edge_map: Vec<EdgeId>,
    /// The initial `X`-coloring restricted to the residual edges.
    pub x_coloring: Vec<u32>,
}

/// Builds the residual instance from a partial coloring of `inst`.
///
/// The returned instance satisfies the (deg+1)-list property: a colored
/// neighbor removes at most one list color *and* one unit of degree.
///
/// # Panics
///
/// Panics if the residual violates the (deg+1)-list property (which would
/// indicate the partial coloring was not produced honestly).
pub fn residual_after_sweep(
    inst: &ListInstance,
    x_coloring: &[u32],
    colors: &[Option<Color>],
) -> Residual {
    let g = inst.graph();
    let open: Vec<EdgeId> = g.edges().filter(|e| colors[e.index()].is_none()).collect();
    let sub = EdgeSubgraph::from_edge_ids(g, &open);
    let mut lists = Vec::with_capacity(open.len());
    for &e in &open {
        let mut list = inst.list(e).clone();
        let used: Vec<Color> = g
            .edge_neighbors(e)
            .filter_map(|f| colors[f.index()])
            .collect();
        list.remove_all(&used);
        lists.push(list);
    }
    let instance = ListInstance::new_unchecked(sub.graph().clone(), lists, inst.palette());
    assert!(
        instance.validate_slack(1.0).is_ok(),
        "residual instance must remain a (deg+1)-list instance"
    );
    let x_restricted: Vec<u32> = sub
        .edge_map()
        .iter()
        .map(|pe| x_coloring[pe.index()])
        .collect();
    Residual {
        instance,
        edge_map: sub.edge_map().to_vec(),
        x_coloring: x_restricted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance;
    use deco_algos::edge_adapter;
    use deco_graph::generators;

    fn x_for(g: &deco_graph::Graph) -> (Vec<u32>, u32) {
        let ids: Vec<u64> = (1..=g.num_nodes() as u64).collect();
        let res = edge_adapter::linial_edge_coloring(g, &ids).unwrap();
        (
            g.edges().map(|e| res.coloring.get(e).unwrap()).collect(),
            res.palette as u32,
        )
    }

    /// An inner "solver" that greedily colors the slack-β instance — valid
    /// for tests because slack > β ≥ 1 implies (deg+1)-lists.
    fn greedy_inner(inst: &ListInstance, _x: &[u32]) -> (Vec<Color>, CostNode) {
        let lists: Vec<Vec<Color>> = inst.lists().iter().map(|l| l.as_slice().to_vec()).collect();
        let coloring = deco_algos::greedy::greedy_list_edge_coloring(
            inst.graph(),
            &lists,
            deco_algos::greedy::EdgeOrder::ById,
        )
        .expect("slack-β instances are greedily solvable");
        let colors: Vec<Color> = inst
            .graph()
            .edges()
            .map(|e| coloring.get(e).unwrap())
            .collect();
        (colors, CostNode::leaf("greedy-inner", 1))
    }

    #[test]
    fn sweep_colors_edges_and_respects_invariants() {
        let g = generators::random_regular(30, 6, 1);
        let inst = instance::two_delta_minus_one(&g);
        let (xc, xp) = x_for(&g);
        let out = sweep(&inst, &xc, xp, 1, &mut greedy_inner);
        assert!(out.stats.colored > 0, "a sweep must make progress");
        assert!(out.stats.min_active_slack > 1.0);
        assert_eq!(out.stats.classes_total, u64::from(defective_palette(1)));
        // Partial coloring is proper and on-list.
        for e in g.edges() {
            if let Some(c) = out.colors[e.index()] {
                assert!(inst.list(e).contains(c));
            }
        }
    }

    #[test]
    fn residual_degree_halves() {
        let g = generators::random_regular(40, 8, 2);
        let inst = instance::two_delta_minus_one(&g);
        let (xc, xp) = x_for(&g);
        let out = sweep(&inst, &xc, xp, 1, &mut greedy_inner);
        let res = residual_after_sweep(&inst, &xc, &out.colors);
        let dbar = inst.max_edge_degree();
        assert!(
            res.instance.max_edge_degree() <= dbar / 2,
            "residual Δ̄ {} must be ≤ Δ̄/2 = {}",
            res.instance.max_edge_degree(),
            dbar / 2
        );
    }

    #[test]
    fn repeated_sweeps_terminate() {
        let g = generators::gnp(40, 0.25, 3);
        let mut inst = instance::two_delta_minus_one(&g);
        let (mut xc, xp) = x_for(&g);
        let mut final_colors: Vec<Option<Color>> = vec![None; g.num_edges()];
        let mut maps: Vec<EdgeId> = g.edges().collect();
        let mut sweeps = 0;
        while inst.graph().num_edges() > 0 {
            let out = sweep(&inst, &xc, xp, 1, &mut greedy_inner);
            for (local, &orig) in maps.iter().enumerate() {
                if let Some(c) = out.colors[local] {
                    final_colors[orig.index()] = Some(c);
                }
            }
            let res = residual_after_sweep(&inst, &xc, &out.colors);
            maps = res.edge_map.iter().map(|&le| maps[le.index()]).collect();
            inst = res.instance;
            xc = res.x_coloring;
            sweeps += 1;
            assert!(sweeps <= 2 + (g.max_edge_degree() as f64).log2().ceil() as u32 + 1);
        }
        // Full coloring is proper and on-list.
        let full = deco_graph::coloring::EdgeColoring::from_vec(final_colors);
        let orig_inst = instance::two_delta_minus_one(&g);
        orig_inst
            .check_solution(&full)
            .expect("complete proper list coloring");
    }

    #[test]
    fn sweep_on_empty_graph() {
        let g = deco_graph::Graph::empty(3);
        let inst = instance::two_delta_minus_one(&g);
        let out = sweep(&inst, &[], 2, 1, &mut greedy_inner);
        assert_eq!(out.stats.classes_nonempty, 0);
        assert_eq!(out.colors.len(), 0);
    }

    #[test]
    fn residual_lists_shrink_with_neighbors() {
        // Path of 3 edges; color the middle edge, residual lists of the two
        // outer edges must drop that color.
        let g = generators::path(4);
        let inst = instance::two_delta_minus_one(&g);
        let colors = vec![None, Some(1), None];
        let res = residual_after_sweep(&inst, &[0, 1, 2], &colors);
        assert_eq!(res.instance.graph().num_edges(), 2);
        for e in res.instance.graph().edges() {
            assert!(!res.instance.list(e).contains(1));
        }
    }
}
