//! Incremental repair of a live `(2Δ−1)`-edge coloring under churn.
//!
//! The paper's palette guarantee is what makes dynamic updates cheap. The
//! line-graph degree of any edge `e = {u, v}` is
//! `deg(e) = deg(u) + deg(v) − 2 ≤ 2Δ − 2`, strictly below the `2Δ − 1`
//! palette — so as long as the rest of the coloring is proper and within
//! bound, *one* uncolored edge can always take the smallest color its
//! neighborhood does not use. That single inequality carries the whole
//! repair path:
//!
//! * **Insert**: only the new edge needs a color; every existing color stays
//!   proper (removing constraints never creates conflicts, and the bound can
//!   only have grown). One greedy probe of the ball around the edge —
//!   O(deg(e)) messages, never a full re-solve.
//! * **Remove**: dropping a color cannot break properness. If Δ shrank, the
//!   palette bound shrinks with it and edges colored `≥ 2Δ' − 1` are swept:
//!   uncolored, then greedily recolored in decreasing edge-degree order —
//!   each succeeds by the same inequality.
//!
//! The escalation ladder below the greedy step is *defensive*: with the true
//! `2Δ − 1` bound it is provably unreachable, but the repair functions take
//! the bound as a parameter (sessions could pin a tighter experimental
//! palette), so exhaustion has a defined answer instead of a panic. Level 1
//! uncolors the whole ball around the edge (every edge sharing an endpoint)
//! and recolors it greedily, largest edge-degree first; level 2 — signalled
//! by [`Repair::exhausted`] — tells the caller to fall back to a scoped
//! re-solve of the full instance (the session runs `solve_pipeline` on the
//! current snapshot).
//!
//! Everything here is deterministic: probe orders are fixed by the overlay,
//! sweep orders are explicitly sorted, and message counts are functions of
//! the graph alone — so replayed traces produce bit-identical repair
//! reports on every engine.

use deco_graph::coloring::{Color, EdgeColoring};
use deco_graph::hashing::{DetHashMap, DetHashSet};
use deco_graph::{Graph, MutableGraph, NodeId};

/// The `(2Δ − 1)`-palette bound for a graph of maximum degree `max_degree`,
/// floored at 1 so the empty and single-edge graphs stay colorable.
pub fn palette_bound(max_degree: usize) -> u32 {
    (2 * max_degree).saturating_sub(1).max(1) as u32
}

fn key(u: NodeId, v: NodeId) -> (u32, u32) {
    if u.0 <= v.0 {
        (u.0, v.0)
    } else {
        (v.0, u.0)
    }
}

/// A live edge coloring keyed by endpoints, so colors survive the edge-id
/// renumbering that edge churn causes in CSR snapshots. Tracks the palette
/// high-water mark in O(1) amortized through a per-color histogram.
#[derive(Debug, Clone, Default)]
pub struct LiveColoring {
    colors: DetHashMap<(u32, u32), Color>,
    /// `hist[c]` = number of edges currently colored `c`.
    hist: Vec<u64>,
    /// Smallest `C` with every live color `< C` (0 when nothing is colored).
    palette_max: u32,
}

impl LiveColoring {
    /// Adopts a complete coloring of `g`, re-keying it by endpoints.
    pub fn from_graph(g: &Graph, coloring: &EdgeColoring) -> LiveColoring {
        let mut live = LiveColoring::default();
        for (e, &[u, v]) in g.edges().zip(g.edge_list()) {
            let c = coloring.get(e).expect("session colorings are complete");
            live.set(u, v, c);
        }
        live
    }

    /// The color of `{u, v}`, if assigned. Endpoint order is irrelevant.
    pub fn get(&self, u: NodeId, v: NodeId) -> Option<Color> {
        self.colors.get(&key(u, v)).copied()
    }

    /// Colors `{u, v}` (overwrites).
    pub fn set(&mut self, u: NodeId, v: NodeId, c: Color) {
        if let Some(old) = self.colors.insert(key(u, v), c) {
            self.forget(old);
        }
        if self.hist.len() <= c as usize {
            self.hist.resize(c as usize + 1, 0);
        }
        self.hist[c as usize] += 1;
        self.palette_max = self.palette_max.max(c + 1);
    }

    /// Uncolors `{u, v}`, returning the color it had.
    pub fn clear(&mut self, u: NodeId, v: NodeId) -> Option<Color> {
        let old = self.colors.remove(&key(u, v));
        if let Some(c) = old {
            self.forget(c);
        }
        old
    }

    fn forget(&mut self, c: Color) {
        self.hist[c as usize] -= 1;
        while self.palette_max > 0 && self.hist[self.palette_max as usize - 1] == 0 {
            self.palette_max -= 1;
        }
    }

    /// Number of colored edges.
    pub fn len(&self) -> usize {
        self.colors.len()
    }

    /// Whether no edge is colored.
    pub fn is_empty(&self) -> bool {
        self.colors.is_empty()
    }

    /// Smallest `C` such that every live color is `< C` (0 when empty). The
    /// session's palette high-water mark; always `≤` the repair bound.
    pub fn palette_max(&self) -> u32 {
        self.palette_max
    }

    /// Projects the live coloring onto `g`'s edge-id order.
    pub fn to_coloring(&self, g: &Graph) -> EdgeColoring {
        EdgeColoring::from_vec(g.edge_list().iter().map(|&[u, v]| self.get(u, v)).collect())
    }
}

/// What one repair did: the counters a session folds into its
/// `UpdateReport`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Repair {
    /// Edges whose color was (re)assigned.
    pub recolored: u64,
    /// Color probes delivered: one message per adjacent colored edge
    /// consulted. A function of the graph alone — engine-independent.
    pub messages: u64,
    /// Whether the ball-recolor escalation ran (the greedy single-edge step
    /// found no free color — unreachable with the true `2Δ−1` bound).
    pub escalated: bool,
    /// Whether even the ball recolor exhausted the palette: the caller must
    /// fall back to a full re-solve of the current snapshot.
    pub exhausted: bool,
}

/// The line-graph degree of `{u, v}` in the live overlay:
/// `deg(u) + deg(v) − 2`.
fn edge_degree(g: &MutableGraph, u: NodeId, v: NodeId) -> u64 {
    (g.degree(u) + g.degree(v) - 2) as u64
}

/// The smallest color `< bound` not used by any colored edge sharing an
/// endpoint with `{u, v}`. `None` iff the neighborhood saturates the bound.
fn smallest_free(
    g: &MutableGraph,
    live: &LiveColoring,
    u: NodeId,
    v: NodeId,
    bound: u32,
) -> Option<Color> {
    let mut used = vec![false; bound as usize];
    for (a, b) in [(u, v), (v, u)] {
        for &w in g.neighbors(a) {
            if w == b {
                continue; // the edge being colored is not its own neighbor
            }
            if let Some(c) = live.get(a, w) {
                if c < bound {
                    used[c as usize] = true;
                }
            }
        }
    }
    used.iter().position(|&taken| !taken).map(|c| c as u32)
}

/// Repairs the coloring after `{u, v}` was inserted into `g`: the greedy
/// single-edge step, escalating per the module docs when `bound` is too
/// tight for it. `bound` is the palette bound of the *post-insert* graph.
pub fn repair_insert(
    g: &MutableGraph,
    live: &mut LiveColoring,
    u: NodeId,
    v: NodeId,
    bound: u32,
) -> Repair {
    let mut out = Repair {
        messages: edge_degree(g, u, v),
        ..Repair::default()
    };
    if let Some(c) = smallest_free(g, live, u, v, bound) {
        live.set(u, v, c);
        out.recolored = 1;
        return out;
    }
    out.escalated = true;
    out.exhausted = !recolor_ball(g, live, u, v, bound, &mut out);
    out
}

/// Repairs the coloring after a removal shrank the palette bound: sweeps
/// every edge colored `≥ bound` (uncolor all, then greedy recolor in
/// decreasing edge-degree order). A no-op when the bound did not shrink
/// below the palette high-water mark.
pub fn repair_shrink(g: &MutableGraph, live: &mut LiveColoring, bound: u32) -> Repair {
    let mut out = Repair::default();
    if live.palette_max() <= bound {
        return out;
    }
    let over: Vec<(u32, u32)> = g
        .edge_list()
        .iter()
        .filter(|&&[a, b]| live.get(a, b).is_some_and(|c| c >= bound))
        .map(|&[a, b]| key(a, b))
        .collect();
    out.exhausted = !recolor_set(g, live, over, bound, &mut out);
    out
}

/// Level-1 escalation: uncolor the whole ball around `{u, v}` — every edge
/// sharing an endpoint with it, itself included — and recolor greedily.
fn recolor_ball(
    g: &MutableGraph,
    live: &mut LiveColoring,
    u: NodeId,
    v: NodeId,
    bound: u32,
    out: &mut Repair,
) -> bool {
    let mut seen = DetHashSet::default();
    let mut ball: Vec<(u32, u32)> = Vec::new();
    for a in [u, v] {
        for &w in g.neighbors(a) {
            let k = key(a, w);
            if seen.insert(k) {
                ball.push(k);
            }
        }
    }
    recolor_set(g, live, ball, bound, out)
}

/// Uncolors `edges`, then greedily recolors them in decreasing
/// edge-degree order (ties broken by normalized endpoints — the
/// conflict-free tie-break: a fixed total order means no two concurrent
/// repairs ever race for a color). Returns `false` if any edge found no
/// free color; partially-recolored state is left for the caller's full
/// re-solve, which overwrites everything anyway.
fn recolor_set(
    g: &MutableGraph,
    live: &mut LiveColoring,
    mut edges: Vec<(u32, u32)>,
    bound: u32,
    out: &mut Repair,
) -> bool {
    for &(a, b) in &edges {
        live.clear(NodeId(a), NodeId(b));
    }
    edges.sort_by_key(|&(a, b)| {
        (
            std::cmp::Reverse(edge_degree(g, NodeId(a), NodeId(b))),
            a,
            b,
        )
    });
    for (a, b) in edges {
        let (a, b) = (NodeId(a), NodeId(b));
        out.messages += edge_degree(g, a, b);
        match smallest_free(g, live, a, b, bound) {
            Some(c) => {
                live.set(a, b, c);
                out.recolored += 1;
            }
            None => return false,
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use deco_graph::coloring::check_partial_edge_coloring;
    use deco_graph::{generators, EdgeUpdate};

    /// Oracle: the live coloring is complete, proper, and within `bound` on
    /// the current snapshot.
    fn assert_proper(g: &MutableGraph, live: &LiveColoring, bound: u32) {
        let snap = g.to_graph();
        let coloring = live.to_coloring(&snap);
        assert_eq!(coloring.uncolored_count(), 0, "complete");
        check_partial_edge_coloring(&snap, &coloring).expect("proper");
        assert!(coloring.max_color().is_none_or(|c| c < bound));
    }

    /// Greedy-colors a whole graph from scratch (valid because each edge is
    /// the "one uncolored edge" in turn).
    fn greedy_seed(g: &MutableGraph, live: &mut LiveColoring, bound: u32) {
        for &[u, v] in g.edge_list() {
            let c = smallest_free(g, live, u, v, bound).expect("2Δ−1 suffices");
            live.set(u, v, c);
        }
    }

    #[test]
    fn insert_repair_never_escalates_at_the_true_bound() {
        let base = generators::gnp(30, 0.15, 11);
        let mut g = MutableGraph::from_graph(&base);
        let mut live = LiveColoring::default();
        greedy_seed(&g, &mut live, palette_bound(g.max_degree()));
        // Insert every missing edge of a deterministic batch.
        let mut inserted = 0;
        for u in 0..30u32 {
            for v in (u + 1..30u32).step_by(7) {
                if g.has_edge(NodeId(u), NodeId(v)) {
                    continue;
                }
                g.insert_edge(NodeId(u), NodeId(v)).unwrap();
                let bound = palette_bound(g.max_degree());
                let rep = repair_insert(&g, &mut live, NodeId(u), NodeId(v), bound);
                assert_eq!(rep.recolored, 1);
                assert!(!rep.escalated && !rep.exhausted);
                assert_eq!(rep.messages, edge_degree(&g, NodeId(u), NodeId(v)));
                inserted += 1;
            }
        }
        assert!(inserted > 20);
        assert_proper(&g, &live, palette_bound(g.max_degree()));
    }

    #[test]
    fn shrink_sweep_restores_the_tighter_bound() {
        // A star has Δ = n−1; deleting leaves shrinks the bound sharply.
        let star = generators::star(8); // center 0, Δ = 8, bound 15
        let mut g = MutableGraph::from_graph(&star);
        let mut live = LiveColoring::default();
        // Color the star with deliberately high colors near the bound.
        for (i, &[u, v]) in g.edge_list().to_vec().iter().enumerate() {
            live.set(u, v, 7 + i as u32); // colors 7..15, proper (star)
        }
        assert_eq!(live.palette_max(), 15);
        for leaf in [8u32, 7, 6, 5] {
            g.remove_edge(NodeId(0), NodeId(leaf)).unwrap();
            live.clear(NodeId(0), NodeId(leaf));
            let bound = palette_bound(g.max_degree());
            let rep = repair_shrink(&g, &mut live, bound);
            assert!(!rep.exhausted);
            assert_proper(&g, &live, bound);
        }
        // Δ is now 4: every color must sit under 7.
        assert!(live.palette_max() <= palette_bound(4));
    }

    #[test]
    fn tight_bound_escalates_to_the_ball_and_succeeds_when_feasible() {
        // Path 0-1-2 colored {0, 1}; insert {0, 2} closing a triangle with
        // an artificially tight bound of 3 (true bound for Δ=2 is 3 too, so
        // use colors that block the greedy step): color both path edges so
        // the new edge sees {0, 1} and must take 2 — now pin bound = 2 to
        // force escalation.
        let mut g = MutableGraph::new(3);
        g.insert_edge(NodeId(0), NodeId(1)).unwrap();
        g.insert_edge(NodeId(1), NodeId(2)).unwrap();
        let mut live = LiveColoring::default();
        live.set(NodeId(0), NodeId(1), 0);
        live.set(NodeId(1), NodeId(2), 1);
        g.insert_edge(NodeId(0), NodeId(2)).unwrap();
        let rep = repair_insert(&g, &mut live, NodeId(0), NodeId(2), 2);
        // Bound 2 on a triangle is infeasible (χ' = 3): ball runs, then
        // exhausts — the caller's cue for a full re-solve.
        assert!(rep.escalated && rep.exhausted);

        // With bound 3 the greedy step succeeds directly.
        let mut live2 = LiveColoring::default();
        live2.set(NodeId(0), NodeId(1), 0);
        live2.set(NodeId(1), NodeId(2), 1);
        let rep2 = repair_insert(&g, &mut live2, NodeId(0), NodeId(2), 3);
        assert!(!rep2.escalated);
        assert_eq!(live2.get(NodeId(0), NodeId(2)), Some(2));
    }

    #[test]
    fn ball_escalation_reshuffles_a_blocked_neighborhood() {
        // Star K_{1,3} colored {0,1,2} with bound 3 (< true bound 5): the
        // greedy step for a 4th leaf edge fails, but the ball recolor also
        // fails (4 center edges, 3 colors) — exhausted. With bound 4 the
        // greedy step succeeds immediately. The interesting middle case:
        // free a color by *mis-distributing* low colors so only the ball
        // pass can fix it.
        let mut g = MutableGraph::new(5);
        for leaf in 1..=3u32 {
            g.insert_edge(NodeId(0), NodeId(leaf)).unwrap();
        }
        let mut live = LiveColoring::default();
        live.set(NodeId(0), NodeId(1), 1);
        live.set(NodeId(0), NodeId(2), 2);
        live.set(NodeId(0), NodeId(3), 3); // color 0 unused, but 3 ≥ bound 3…
        g.insert_edge(NodeId(0), NodeId(4)).unwrap();
        // Bound 4: greedy sees {1,2,3} used → takes 0 directly.
        let rep = repair_insert(&g, &mut live, NodeId(0), NodeId(4), 4);
        assert!(!rep.escalated);
        assert_eq!(live.get(NodeId(0), NodeId(4)), Some(0));
        assert_eq!(live.palette_max(), 4);
    }

    #[test]
    fn live_coloring_tracks_palette_high_water_mark() {
        let mut live = LiveColoring::default();
        assert_eq!(live.palette_max(), 0);
        assert!(live.is_empty());
        live.set(NodeId(0), NodeId(1), 4);
        live.set(NodeId(1), NodeId(2), 2);
        assert_eq!(live.palette_max(), 5);
        live.set(NodeId(0), NodeId(1), 1); // overwrite drops the old count
        assert_eq!(live.palette_max(), 3);
        assert_eq!(live.clear(NodeId(2), NodeId(1)), Some(2)); // reversed ok
        assert_eq!(live.palette_max(), 2);
        assert_eq!(live.len(), 1);
        assert_eq!(live.clear(NodeId(0), NodeId(1)), Some(1));
        assert_eq!(live.palette_max(), 0);
        assert_eq!(live.clear(NodeId(0), NodeId(1)), None);
    }

    #[test]
    fn churn_trace_stays_proper_under_repair() {
        // A longer randomized-but-seeded trace driving both repair paths,
        // with the full oracle after every update.
        let base = generators::random_regular(24, 4, 17);
        let mut g = MutableGraph::from_graph(&base);
        let mut live = LiveColoring::default();
        greedy_seed(&g, &mut live, palette_bound(g.max_degree()));
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        for _ in 0..300 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = ((state >> 33) % 24) as u32;
            let v = ((state >> 13) % 24) as u32;
            if u == v {
                continue;
            }
            let (u, v) = (NodeId(u), NodeId(v));
            let update = if g.has_edge(u, v) {
                EdgeUpdate::remove(u, v)
            } else {
                EdgeUpdate::insert(u, v)
            };
            if update.is_insert() {
                g.insert_edge(u, v).unwrap();
                let bound = palette_bound(g.max_degree());
                let rep = repair_insert(&g, &mut live, u, v, bound);
                assert!(!rep.exhausted, "true bound never exhausts");
            } else {
                g.remove_edge(u, v).unwrap();
                live.clear(u, v);
                let bound = palette_bound(g.max_degree());
                let rep = repair_shrink(&g, &mut live, bound);
                assert!(!rep.exhausted, "true bound never exhausts");
            }
            assert_proper(&g, &live, palette_bound(g.max_degree()));
        }
    }

    #[test]
    fn palette_bound_floors_at_one() {
        assert_eq!(palette_bound(0), 1);
        assert_eq!(palette_bound(1), 1);
        assert_eq!(palette_bound(2), 3);
        assert_eq!(palette_bound(5), 9);
    }
}
