//! Fixed-schedule round budgets: exact evaluation of the paper's
//! recurrences, plus the comparator curves from the related-work discussion.
//!
//! A LOCAL algorithm runs on a fixed schedule: every subroutine is allotted
//! its worst-case number of rounds, computable by all nodes from globally
//! known parameters. This module evaluates those schedules *exactly* from
//! the recurrences of Lemmas 4.2/4.3/4.5 — so the Theorem 4.1 growth curve
//! `log^{O(log log Δ̄)} Δ̄` can be plotted for Δ̄ up to 2⁶⁴ without
//! simulating a graph of that degree.
//!
//! Two kinds of curves:
//!
//! * **Exact budgets** ([`BudgetEvaluator`]) — the full recurrence with the
//!   paper's constants (`β = α·log^{4c} Δ̄`, `24·H_{2p}·log p` slack loss,
//!   `24β²+6β` defective classes). These make the constants story honest:
//!   the asymptotic win only materializes at astronomical Δ̄.
//! * **Θ-shape curves** ([`theta`]) — the leading-order forms
//!   (`log^{log log} Δ̄`, `2^{√log Δ̄}`, `√Δ̄·polylog`, `Δ̄`, `Δ̄²`) with unit
//!   constants, which is the comparison the paper itself makes (who wins,
//!   where the crossovers fall).

use crate::defective::defective_palette;
use crate::solver::space_requirement;
use deco_local::math::{log_star, next_prime};
use std::collections::HashMap;

/// Parameters of the exact budget evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetParams {
    /// The paper's constant α in `β = α·log^{4c} Δ̄`.
    pub alpha: f64,
    /// Degree at or below which the base case runs.
    pub base_dbar: f64,
    /// Palette at or below which space reduction stops.
    pub small_palette: f64,
    /// The `log* X` term (depends only on the ID space; X = O(Δ̄²)).
    pub log_star_x: f64,
}

impl Default for BudgetParams {
    fn default() -> Self {
        BudgetParams {
            alpha: 1.0,
            base_dbar: 8.0,
            small_palette: 12.0,
            log_star_x: 5.0,
        }
    }
}

/// Memoized evaluator of the paper's round recurrences.
#[derive(Debug, Default)]
pub struct BudgetEvaluator {
    params: BudgetParams,
    memo_deg1: HashMap<(u64, u64), f64>,
    memo_slack: HashMap<(u64, u64, u64), f64>,
}

impl BudgetEvaluator {
    /// Creates an evaluator.
    pub fn new(params: BudgetParams) -> BudgetEvaluator {
        BudgetEvaluator {
            params,
            ..BudgetEvaluator::default()
        }
    }

    /// `T(Δ̄, 1, C)` — scheduled rounds of the full (deg+1)-list solver.
    pub fn t_deg1(&mut self, dbar: f64, c: f64) -> f64 {
        // T(Δ̄, S, C) = T(min(Δ̄, ⌈C/S⌉−1), S, C): the palette caps the degree.
        let dbar = dbar.min((c - 1.0).max(0.0));
        if dbar <= self.params.base_dbar {
            return self.base_cost(dbar);
        }
        let key = (dbar.to_bits(), c.to_bits());
        if let Some(&v) = self.memo_deg1.get(&key) {
            return v;
        }
        // Lemma 4.2: defective coloring (O(log* X)) + all O(β²) classes,
        // each allotted 1 + T(Δ̄/2β, β, C), then recurse on Δ̄/2.
        let beta = self.beta(dbar, c);
        let classes = if beta < 13_000.0 {
            f64::from(defective_palette(beta as u32 + 1))
        } else {
            24.0 * beta * beta + 6.0 * beta
        };
        let defective_rounds = self.params.log_star_x + 25.0;
        let sweep = defective_rounds + classes * (1.0 + self.t_slack(dbar / (2.0 * beta), beta, c));
        let total = sweep + self.t_deg1(dbar / 2.0, c);
        self.memo_deg1.insert(key, total);
        total
    }

    /// `T(Δ̄, S, C)` — scheduled rounds with list slack `S`.
    pub fn t_slack(&mut self, dbar: f64, s: f64, c: f64) -> f64 {
        let dbar = dbar.min(((c / s).ceil() - 1.0).max(0.0));
        if dbar <= self.params.base_dbar || c <= self.params.small_palette {
            return self.t_deg1(dbar, c);
        }
        let key = (dbar.to_bits(), s.to_bits(), c.to_bits());
        if let Some(&v) = self.memo_slack.get(&key) {
            return v;
        }
        let p = dbar.sqrt().floor().max(2.0);
        let req = space_requirement(c.min(f64::from(u32::MAX)) as u32, p as u32);
        let total = if s < req || 2.0 * p - 1.0 >= dbar {
            // Slack too small for a Lemma 4.3 step: solve as slack-1.
            self.t_deg1(dbar, c)
        } else {
            // Lemma 4.3: (log p)·(1 + T(2p−1, 1, 2p)) for the assignment,
            // then the q sub-instances run in parallel (max = same bound).
            let assign = p.log2().max(1.0) * (1.0 + self.t_deg1(2.0 * p - 1.0, 2.0 * p));
            assign + self.t_slack(dbar, s / req, (c / p).ceil())
        };
        self.memo_slack.insert(key, total);
        total
    }

    /// Base case `T(O(1), ·, ·)`: Linial from X (`O(log* X)`) + eliminating
    /// the fixpoint palette's classes (a constant depending on Δ̄ ≤ base).
    fn base_cost(&self, dbar: f64) -> f64 {
        let q = next_prime((2.0 * dbar.max(1.0)) as u64);
        self.params.log_star_x + (q * q) as f64
    }

    fn beta(&self, dbar: f64, c: f64) -> f64 {
        let c_exp = (c.max(2.0).ln() / dbar.max(2.0).ln()).max(1.0);
        (self.params.alpha * dbar.log2().max(1.0).powf(4.0 * c_exp)).max(1.0)
    }
}

/// Leading-order Θ-shape curves (unit constants) for the related-work
/// comparison the paper makes in §1. `ls` is the `log* n` additive term.
pub mod theta {
    use deco_local::math::log_star;

    /// This paper: `log^{log log Δ̄} Δ̄ + log* n`.
    pub fn balliu_kuhn_olivetti(dbar: f64, ls: f64) -> f64 {
        if dbar < 4.0 {
            return 1.0 + ls;
        }
        let l = dbar.log2();
        l.powf(l.log2().max(1.0)) + ls
    }

    /// Kuhn SODA'20: `2^{√log Δ̄} + log* n`.
    pub fn kuhn20(dbar: f64, ls: f64) -> f64 {
        if dbar < 2.0 {
            return 1.0 + ls;
        }
        2f64.powf(dbar.log2().sqrt()) + ls
    }

    /// Fraigniaud–Heinrich–Kosowski'16 (+BEG'18): `√Δ̄·log Δ̄·log* Δ̄ + log* n`.
    pub fn fhk16(dbar: f64, ls: f64) -> f64 {
        if dbar < 2.0 {
            return 1.0 + ls;
        }
        let lstar = f64::from(log_star(dbar));
        dbar.sqrt() * dbar.log2() * lstar.max(1.0) + ls
    }

    /// Panconesi–Rizzi'01 / BE'09-family: `Δ̄ + log* n`.
    pub fn pr01(dbar: f64, ls: f64) -> f64 {
        dbar + ls
    }

    /// Linial + one-class-at-a-time: `Δ̄² + log* n`.
    pub fn linial_trivial(dbar: f64, ls: f64) -> f64 {
        dbar * dbar + ls
    }

    /// Log-domain curves: `ln T` as a function of `L = log₂ Δ̄`.
    ///
    /// The crossover between this paper and Kuhn'20 sits near
    /// `Δ̄ ≈ 2^65536` — far beyond what `f64` can represent directly — so
    /// the honest asymptotic comparison is made on `ln T(L)`.
    pub mod log_domain {
        const LN2: f64 = std::f64::consts::LN_2;

        /// `ln(L^{log₂ L}) = log₂(L)·ln(L)` — this paper.
        pub fn balliu_kuhn_olivetti(l: f64) -> f64 {
            let l = l.max(2.0);
            l.log2() * l.ln()
        }

        /// `ln(2^{√L}) = √L·ln 2` — Kuhn'20.
        pub fn kuhn20(l: f64) -> f64 {
            l.max(1.0).sqrt() * LN2
        }

        /// `ln(2^{L/2}·L·log* ) ≈ (L/2)·ln2 + ln L` — FHK'16.
        pub fn fhk16(l: f64) -> f64 {
            l / 2.0 * LN2 + l.max(2.0).ln()
        }

        /// `ln(2^L) = L·ln2` — PR'01.
        pub fn pr01(l: f64) -> f64 {
            l * LN2
        }

        /// `ln(2^{2L}) = 2L·ln2` — Linial + trivial reduction.
        pub fn linial_trivial(l: f64) -> f64 {
            2.0 * l * LN2
        }
    }
}

/// Crossover finder: the smallest `Δ̄ = 2^k` (k in `4..=max_pow`) where
/// `a(Δ̄) < b(Δ̄)`, if any.
pub fn crossover_pow2<A, B>(a: A, b: B, max_pow: u32) -> Option<u64>
where
    A: Fn(f64) -> f64,
    B: Fn(f64) -> f64,
{
    (4..=max_pow)
        .map(|k| 1u64 << k)
        .find(|&d| a(d as f64) < b(d as f64))
}

/// `log*₂ x`, re-exported for the experiment harness.
pub fn log_star_of(x: f64) -> u32 {
    log_star(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use deco_local::math::harmonic;

    #[test]
    fn exact_budget_grows_over_wide_range() {
        // Exact budgets need not be locally monotone (parameter regimes
        // switch discretely), but they must be finite, positive, and grow
        // across decades.
        let mut ev = BudgetEvaluator::new(BudgetParams::default());
        for k in 4..=32 {
            let d = 2f64.powi(k);
            let t = ev.t_deg1(d, 2.0 * d);
            assert!(t.is_finite() && t > 0.0, "k={k}");
        }
        let small = ev.t_deg1(2f64.powi(6), 2f64.powi(7));
        let large = ev.t_deg1(2f64.powi(30), 2f64.powi(31));
        assert!(
            large > 10.0 * small,
            "budget must grow substantially with Δ̄"
        );
    }

    #[test]
    fn exact_budget_handles_huge_dbar() {
        let mut ev = BudgetEvaluator::new(BudgetParams::default());
        let t = ev.t_deg1(2f64.powi(64), 2f64.powi(65));
        assert!(t.is_finite(), "2^64 budget must evaluate");
        assert!(t > 1e6);
    }

    #[test]
    fn quasi_polylog_grows_slower_than_every_poly() {
        // log^{log log d} d / d^ε → 0 for ε = 1/4; the decline only starts
        // around L = log₂ d ≈ 320 (where (log L)² < L/4), so test deep in
        // the f64 range.
        let at = |d: f64| theta::balliu_kuhn_olivetti(d, 0.0) / d.powf(0.25);
        assert!(at(2f64.powf(400.0)) < at(2f64.powf(16.0)));
        assert!(at(2f64.powf(700.0)) < at(2f64.powf(400.0)));
    }

    #[test]
    fn theta_ordering_at_plottable_dbar() {
        // In any directly plottable range (Δ̄ ≤ 2^64, unit constants) the
        // honest ordering is kuhn20 < ours < fhk16 < pr01 < linial²: the
        // asymptotic win over Kuhn'20 needs Δ̄ ≈ 2^65536 (see log_domain).
        let d = 2f64.powi(48);
        let ls = 5.0;
        let ours = theta::balliu_kuhn_olivetti(d, ls);
        let k20 = theta::kuhn20(d, ls);
        let fhk = theta::fhk16(d, ls);
        let pr = theta::pr01(d, ls);
        let lin = theta::linial_trivial(d, ls);
        assert!(k20 < ours, "{k20} !< {ours}");
        assert!(ours < fhk, "{ours} !< {fhk}");
        assert!(fhk < pr);
        assert!(pr < lin);
    }

    #[test]
    fn log_domain_crossover_vs_kuhn20_near_l_65536() {
        // ln T_ours(L) = log₂(L)·ln L vs ln T_kuhn(L) = √L·ln 2: the
        // crossover sits almost exactly at L = 2^16 (i.e. Δ̄ ≈ 2^65536).
        use theta::log_domain as ld;
        assert!(ld::balliu_kuhn_olivetti(4096.0) > ld::kuhn20(4096.0));
        assert!(ld::balliu_kuhn_olivetti(131_072.0) < ld::kuhn20(131_072.0));
        // Against FHK/PR01/linial the log-domain win is already at tiny L.
        assert!(ld::balliu_kuhn_olivetti(64.0) < ld::fhk16(64.0));
        assert!(ld::balliu_kuhn_olivetti(64.0) < ld::pr01(64.0));
        assert!(ld::balliu_kuhn_olivetti(64.0) < ld::linial_trivial(64.0));
    }

    #[test]
    fn crossover_against_linear_exists() {
        let cross = crossover_pow2(
            |d| theta::balliu_kuhn_olivetti(d, 0.0),
            |d| theta::pr01(d, 0.0),
            64,
        );
        assert!(cross.is_some(), "ours must eventually beat O(Δ̄)");
    }

    #[test]
    fn crossover_finder_basics() {
        let c = crossover_pow2(|d| d, |d| d * d, 16);
        assert_eq!(c, Some(16));
        let none = crossover_pow2(|d| d * d, |d| d, 8);
        assert_eq!(none, None);
    }

    #[test]
    fn exact_budget_reflects_alpha() {
        let mut small = BudgetEvaluator::new(BudgetParams {
            alpha: 1.0,
            ..Default::default()
        });
        let mut big = BudgetEvaluator::new(BudgetParams {
            alpha: 8.0,
            ..Default::default()
        });
        let d = 2f64.powi(20);
        assert!(small.t_deg1(d, 2.0 * d) < big.t_deg1(d, 2.0 * d));
    }

    #[test]
    fn slack_caps_degree_by_palette() {
        let mut ev = BudgetEvaluator::new(BudgetParams::default());
        // With S ≥ C the degree collapses to 0 → base cost only.
        let t = ev.t_slack(1e9, 1e6, 1e6);
        assert!(t <= ev.base_cost(0.0) + 1.0);
    }

    #[test]
    fn requirement_uses_actual_partition_q() {
        let r = space_requirement(1 << 20, 1 << 10);
        let upper = 24.0 * harmonic(2 << 10) * 10.0;
        assert!(r <= upper + 1e-9);
    }

    #[test]
    fn log_star_reexport() {
        assert_eq!(log_star_of(65536.0), 4);
    }
}
