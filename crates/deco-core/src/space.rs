//! Lemma 4.3 — list color space reduction, the paper's main technical
//! contribution.
//!
//! Given an instance over a palette of size `C` and a parameter `p`, the
//! palette is partitioned into `q ≤ 2p` subspaces of size ≤ `C/p`
//! ([`SubspacePartition`]), and every edge is assigned one subspace, its
//! list shrinking to the intersection. The assignment guarantees Eq. (2):
//!
//! ```text
//! deg′(e) ≤ 24·H_q·log p · (|L′_e| / |L_e|) · deg(e)
//! ```
//!
//! so the per-subspace residual instances lose slack by a factor of at most
//! `24·H_{2p}·log p`, and can be solved *in parallel* (distinct subspaces
//! use disjoint colors).
//!
//! Assignment procedure (paper, §4.2):
//! * every edge computes its *level* `ℓ(e)` (Lemma 4.4 guarantees one
//!   exists);
//! * edges with `ℓ(e) ≤ 3` take the subspace with the largest intersection;
//! * edges with `ℓ(e) > 3` and `deg(e) ≥ 2^{ℓ}` (the set `E⁽¹⁾`) are
//!   processed in phases `ℓ = 4, …, ⌊log q⌋`: each builds its candidate set
//!   `J_e` (large intersection + not overloaded by earlier choices), nodes
//!   split into *virtual copies* of degree ≤ `2^{ℓ−2}`, and the subspace
//!   assignment becomes a (deg+1)-list edge coloring instance on the virtual
//!   graph with palette `{1..q}`, solved recursively;
//! * edges with `ℓ(e) > 3` and `deg(e) < 2^{ℓ}` (the set `E⁽²⁾`) have more
//!   candidate subspaces than neighbors and finish with a conflict-free
//!   recursive list coloring of their own.

use crate::instance::ListInstance;
use crate::lists::{level_of, ColorList, LevelInfo, SubspacePartition};
use crate::solver::SolveError;
use deco_graph::coloring::Color;
use deco_graph::{EdgeId, EdgeSubgraph, Graph, GraphBuilder, NodeId};
use deco_local::math::{floor_log2, harmonic};
use deco_local::CostNode;
use std::collections::HashMap;

/// Solver callback for the small recursive assignment instances
/// ((deg+1)-list edge coloring with palette ≤ 2p). Receives the instance and
/// its restricted initial `X`-edge-coloring. The assignment phases are
/// inherently sequential (phase ℓ reads the assignments of phases < ℓ), so
/// this stays a single-threaded `FnMut`; errors abort the reduction.
pub type AssignSolver<'a> =
    dyn FnMut(&ListInstance, &[u32]) -> Result<(Vec<Color>, CostNode), SolveError> + 'a;

/// One per-subspace residual instance produced by the reduction.
#[derive(Debug, Clone)]
pub struct SubInstance {
    /// Index of the subspace in the partition.
    pub subspace: u32,
    /// The residual instance; colors are remapped to `0..(hi−lo)`.
    pub instance: ListInstance,
    /// Offset to map local colors back: global = local + offset.
    pub color_offset: Color,
    /// Map from the sub-instance's edge ids to the parent instance's.
    pub edge_map: Vec<EdgeId>,
    /// Initial `X`-coloring restricted to the sub-instance's edges.
    pub x_coloring: Vec<u32>,
}

/// Statistics verifying the Lemma 4.3/4.4 invariants, reported by the
/// experiment harness.
#[derive(Debug, Clone, Default)]
pub struct SpaceStats {
    /// Number of subspaces `q`.
    pub q: u32,
    /// Edges assigned by the argmax rule (`ℓ(e) ≤ 3`).
    pub argmax_edges: usize,
    /// Edges in `E⁽¹⁾` (phased assignment).
    pub e1_edges: usize,
    /// Edges in `E⁽²⁾` (conflict-free assignment).
    pub e2_edges: usize,
    /// Phases that actually ran.
    pub phases_run: u32,
    /// Max over edges of `deg′(e)·|L_e| / (|L′_e|·deg(e))`; Eq. (2) asserts
    /// this is ≤ `24·H_q·log p`.
    pub eq2_max_ratio: f64,
    /// The Eq. (2) bound `24·H_q·log p` for this run.
    pub eq2_bound: f64,
    /// Minimum observed `|J_e|` slack over `2^{ℓ−1}` (≥ 0 per the lemma).
    pub min_je_surplus: i64,
}

/// Result of one color space reduction.
#[derive(Debug, Clone)]
pub struct SpaceReduction {
    /// Subspace index per parent edge.
    pub assignment: Vec<u32>,
    /// Non-empty per-subspace residual instances (solvable in parallel).
    pub sub_instances: Vec<SubInstance>,
    /// Round cost of the assignment (phases + E⁽²⁾ round).
    pub cost: CostNode,
    /// Invariant statistics.
    pub stats: SpaceStats,
}

/// Runs the Lemma 4.3 subspace assignment on `inst` with parameter `p`.
///
/// `assign_solver` is invoked on the recursive assignment instances (virtual
/// graphs and the `E⁽²⁾` subgraph); all have maximum edge degree ≤ `2p−1`
/// and palette ≤ `2p`.
///
/// # Errors
///
/// Propagates the first `assign_solver` error.
///
/// # Panics
///
/// Panics if a proven invariant fails (`|J_e| ≥ 2^{ℓ−1}`, virtual instances
/// not (deg+1), Eq. (2) violated) or if `p` is out of range `[2, C]`.
pub fn reduce_color_space(
    inst: &ListInstance,
    p: u32,
    x_coloring: &[u32],
    assign_solver: &mut AssignSolver<'_>,
) -> Result<SpaceReduction, SolveError> {
    let g = inst.graph();
    let m = g.num_edges();
    let partition = SubspacePartition::new(inst.palette(), p);
    let q = partition.num_subspaces();
    let hq = harmonic(u64::from(q));
    let log_p = (f64::from(p)).log2().max(1.0);
    let eq2_bound = 24.0 * hq * log_p;

    let levels: Vec<LevelInfo> = g
        .edges()
        .map(|e| level_of(inst.list(e), &partition))
        .collect();

    let mut assignment: Vec<Option<u32>> = vec![None; m];
    let mut stats = SpaceStats {
        q,
        eq2_bound,
        min_je_surplus: i64::MAX,
        ..SpaceStats::default()
    };
    let mut cost_children: Vec<CostNode> = Vec::new();

    // --- Edges with ℓ(e) ≤ 3: argmax subspace (0 rounds, purely local). ---
    for e in g.edges() {
        if levels[e.index()].level <= 3 {
            assignment[e.index()] = Some(levels[e.index()].indices[0]);
            stats.argmax_edges += 1;
        }
    }
    cost_children.push(CostNode::leaf("argmax assignment (ℓ ≤ 3)", 0));

    // --- Split the rest into E⁽¹⁾ and E⁽²⁾. ---
    let mut e1: Vec<EdgeId> = Vec::new();
    let mut e2: Vec<EdgeId> = Vec::new();
    for e in g.edges() {
        let l = levels[e.index()].level;
        if l > 3 {
            if g.edge_degree(e) >= (1usize << l) {
                e1.push(e);
            } else {
                e2.push(e);
            }
        }
    }
    stats.e1_edges = e1.len();
    stats.e2_edges = e2.len();

    // Count, per edge, how many neighbors already chose each subspace.
    let assigned_counts = |g: &Graph, assignment: &[Option<u32>], e: EdgeId| {
        let mut counts: HashMap<u32, usize> = HashMap::new();
        for f in g.edge_neighbors(e) {
            if let Some(i) = assignment[f.index()] {
                *counts.entry(i).or_insert(0) += 1;
            }
        }
        counts
    };

    // --- E⁽¹⁾ phases ℓ = 4..⌊log q⌋. ---
    let max_level = floor_log2(u64::from(q));
    for l in 4..=max_level {
        let active: Vec<EdgeId> = e1
            .iter()
            .copied()
            .filter(|e| levels[e.index()].level == l)
            .collect();
        if active.is_empty() {
            continue;
        }
        stats.phases_run += 1;

        // J_e: subspaces with a large intersection that at most
        // deg(e)/2^{ℓ−1} neighbors already chose. 1 round to learn the
        // neighbors' assignments.
        let mut je_lists: Vec<ColorList> = Vec::with_capacity(active.len());
        for &e in &active {
            let counts = assigned_counts(g, &assignment, e);
            let cap = g.edge_degree(e) as f64 / 2f64.powi(l as i32 - 1);
            let je: Vec<Color> = levels[e.index()]
                .indices
                .iter()
                .copied()
                .filter(|&i| counts.get(&i).copied().unwrap_or(0) as f64 <= cap)
                .collect();
            let need = 1i64 << (l - 1);
            stats.min_je_surplus = stats.min_je_surplus.min(je.len() as i64 - need);
            assert!(
                je.len() as i64 >= need,
                "|J_e| = {} below 2^(ℓ−1) = {need} in phase {l}",
                je.len()
            );
            je_lists.push(ColorList::new(je));
        }

        // Virtual graph: each node splits its active edges into groups of
        // ≤ 2^{ℓ−2}; the group becomes a virtual copy of the node, so the
        // virtual line-graph degree is ≤ 2^{ℓ−1} − 2 < |J_e|.
        let group_cap = 1usize << (l - 2);
        let vgraph = build_virtual_graph(g, &active, group_cap);
        let vinst = ListInstance::new_unchecked(vgraph, je_lists, q);
        vinst
            .validate_slack(1.0)
            .expect("virtual instance must be a (deg+1)-list instance");
        let vx: Vec<u32> = active.iter().map(|e| x_coloring[e.index()]).collect();
        let (vcolors, vcost) = assign_solver(&vinst, &vx)?;
        debug_assert!(
            vinst
                .check_solution(&deco_graph::coloring::EdgeColoring::from_complete(
                    vcolors.clone()
                ))
                .is_ok(),
            "assignment solver returned an invalid virtual coloring"
        );
        for (idx, &e) in active.iter().enumerate() {
            assignment[e.index()] = Some(vcolors[idx]);
        }
        cost_children.push(CostNode::seq(
            format!("phase ℓ={l}: assign E(1) via virtual graph"),
            vec![CostNode::leaf("determine J_e", 1), vcost],
        ));
    }

    // --- E⁽²⁾: more candidates than neighbors → conflict-free assignment. ---
    if !e2.is_empty() {
        let in_e2: Vec<bool> = {
            let mut v = vec![false; m];
            for &e in &e2 {
                v[e.index()] = true;
            }
            v
        };
        let mut lists2: Vec<ColorList> = Vec::with_capacity(e2.len());
        for &e in &e2 {
            // Candidates: large-intersection subspaces minus those taken by
            // already-assigned (non-E⁽²⁾) neighbors. 1 round to learn them.
            let taken: Vec<Color> = g
                .edge_neighbors(e)
                .filter(|f| !in_e2[f.index()])
                .filter_map(|f| assignment[f.index()])
                .collect();
            let mut cands = ColorList::new(levels[e.index()].indices.clone());
            cands.remove_all(&taken);
            lists2.push(cands);
        }
        let sub2 = EdgeSubgraph::from_edge_ids(g, &e2);
        let inst2 = ListInstance::new_unchecked(sub2.graph().clone(), lists2, q);
        inst2
            .validate_slack(1.0)
            .expect("E(2) instance must be a (deg+1)-list instance");
        let x2: Vec<u32> = e2.iter().map(|e| x_coloring[e.index()]).collect();
        let (colors2, cost2) = assign_solver(&inst2, &x2)?;
        for (idx, &e) in e2.iter().enumerate() {
            assignment[e.index()] = Some(colors2[idx]);
        }
        // E⁽²⁾ edges end with deg′ = 0 (distinct from *all* neighbors).
        for &e in &e2 {
            let mine = assignment[e.index()];
            debug_assert!(
                g.edge_neighbors(e).all(|f| assignment[f.index()] != mine),
                "E(2) edge {e} must be conflict-free"
            );
        }
        cost_children.push(CostNode::seq(
            "assign E(2) conflict-free".to_string(),
            vec![CostNode::leaf("learn free subspaces", 1), cost2],
        ));
    }

    let assignment: Vec<u32> = assignment
        .into_iter()
        .map(|a| a.expect("every edge assigned"))
        .collect();

    // --- Verify Eq. (2) for every edge. ---
    for e in g.edges() {
        let ie = assignment[e.index()];
        let (lo, hi) = partition.range(ie);
        let l_new = inst.list(e).count_in_range(lo, hi);
        assert!(l_new >= 1, "assigned subspace must intersect the list");
        let deg = g.edge_degree(e);
        if deg == 0 {
            continue;
        }
        let deg_new = g
            .edge_neighbors(e)
            .filter(|f| assignment[f.index()] == ie)
            .count();
        let ratio = deg_new as f64 * inst.list(e).len() as f64 / (l_new as f64 * deg as f64);
        stats.eq2_max_ratio = stats.eq2_max_ratio.max(ratio);
        assert!(
            ratio <= eq2_bound + 1e-9,
            "Eq. (2) violated at {e}: ratio {ratio:.2} > bound {eq2_bound:.2}"
        );
    }

    // --- Build the per-subspace residual instances. ---
    let mut sub_instances = Vec::new();
    for i in 0..q {
        let members: Vec<EdgeId> = g.edges().filter(|e| assignment[e.index()] == i).collect();
        if members.is_empty() {
            continue;
        }
        let (lo, hi) = partition.range(i);
        let sub = EdgeSubgraph::from_edge_ids(g, &members);
        let lists: Vec<ColorList> = members
            .iter()
            .map(|&e| {
                ColorList::new(
                    inst.list(e)
                        .restrict_to_range(lo, hi)
                        .iter()
                        .map(|c| c - lo)
                        .collect(),
                )
            })
            .collect();
        let instance = ListInstance::new_unchecked(sub.graph().clone(), lists, hi - lo);
        let x_sub: Vec<u32> = members.iter().map(|&e| x_coloring[e.index()]).collect();
        sub_instances.push(SubInstance {
            subspace: i,
            instance,
            color_offset: lo,
            edge_map: sub.edge_map().to_vec(),
            x_coloring: x_sub,
        });
    }

    let cost = CostNode::seq(format!("lemma-4.3 space reduction(p={p})"), cost_children);
    Ok(SpaceReduction {
        assignment,
        sub_instances,
        cost,
        stats,
    })
}

/// Builds the phase-ℓ virtual graph: nodes are (real node, group) pairs
/// where each group holds at most `group_cap` of the node's active edges
/// (in port order); edges are the active edges.
///
/// The returned graph's edge `i` corresponds to `active[i]`. Exposed so the
/// Figure 6 experiment can reproduce the construction in isolation.
pub fn build_virtual_graph(g: &Graph, active: &[EdgeId], group_cap: usize) -> Graph {
    let active_set: HashMap<EdgeId, usize> =
        active.iter().enumerate().map(|(i, &e)| (e, i)).collect();
    // Virtual endpoint of each active edge at each side (0 = smaller node).
    let mut vid_of = vec![[u32::MAX; 2]; active.len()];
    let mut next_vid = 0u32;
    for v in g.nodes() {
        let mut count = 0usize;
        let mut current_vid = u32::MAX;
        for adj in g.adjacent(v) {
            let Some(&ai) = active_set.get(&adj.edge) else {
                continue;
            };
            if count.is_multiple_of(group_cap) {
                current_vid = next_vid;
                next_vid += 1;
            }
            count += 1;
            let side = usize::from(g.endpoints(adj.edge)[1] == v);
            vid_of[ai][side] = current_vid;
        }
    }
    let mut builder = GraphBuilder::new(next_vid as usize);
    for ve in &vid_of {
        debug_assert!(ve[0] != u32::MAX && ve[1] != u32::MAX);
        builder.add_edge(NodeId(ve[0]), NodeId(ve[1]));
    }
    builder.build().expect("virtual copies keep edges distinct")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance;
    use deco_algos::greedy;
    use deco_graph::generators;

    /// Greedy assignment solver — valid because the recursive instances are
    /// (deg+1)-list instances.
    fn greedy_assign(
        inst: &ListInstance,
        _x: &[u32],
    ) -> Result<(Vec<Color>, CostNode), SolveError> {
        let lists: Vec<Vec<Color>> = inst.lists().iter().map(|l| l.as_slice().to_vec()).collect();
        let coloring =
            greedy::greedy_list_edge_coloring(inst.graph(), &lists, greedy::EdgeOrder::ById)
                .expect("(deg+1)-list instances are greedily solvable");
        let colors = inst
            .graph()
            .edges()
            .map(|e| coloring.get(e).unwrap())
            .collect();
        Ok((colors, CostNode::leaf("greedy-assign", 1)))
    }

    fn x_for(g: &Graph) -> Vec<u32> {
        // Tests may use any proper edge coloring; greedy suffices.
        let c = greedy::greedy_edge_coloring(g, greedy::EdgeOrder::ById);
        g.edges().map(|e| c.get(e).unwrap()).collect()
    }

    #[test]
    fn reduction_covers_all_edges_and_satisfies_eq2() {
        let g = generators::random_regular(40, 8, 1);
        // Plenty of slack so the sub-instances stay feasible.
        let inst = instance::random_with_slack(&g, 4000, 60.0, 2);
        let x = x_for(&g);
        let red = reduce_color_space(&inst, 4, &x, &mut greedy_assign).unwrap();
        assert_eq!(red.assignment.len(), g.num_edges());
        assert!(red.stats.eq2_max_ratio <= red.stats.eq2_bound);
        // Every edge appears in exactly one sub-instance.
        let total: usize = red.sub_instances.iter().map(|s| s.edge_map.len()).sum();
        assert_eq!(total, g.num_edges());
    }

    #[test]
    fn sub_instance_lists_match_intersections() {
        let g = generators::complete(10);
        let inst = instance::random_with_slack(&g, 2000, 40.0, 3);
        let x = x_for(&g);
        let red = reduce_color_space(&inst, 4, &x, &mut greedy_assign).unwrap();
        let partition = SubspacePartition::new(inst.palette(), 4);
        for sub in &red.sub_instances {
            let (lo, hi) = partition.range(sub.subspace);
            assert_eq!(sub.color_offset, lo);
            assert!(sub.instance.palette() == hi - lo);
            for (idx, &pe) in sub.edge_map.iter().enumerate() {
                let local = sub.instance.list(deco_graph::EdgeId::from(idx));
                let expected = inst.list(pe).restrict_to_range(lo, hi);
                assert_eq!(local.len(), expected.len());
                for (a, b) in local.iter().zip(expected.iter()) {
                    assert_eq!(a + lo, b);
                }
            }
        }
    }

    #[test]
    fn sub_instances_keep_deg_plus_one_when_slack_suffices() {
        let g = generators::random_regular(30, 6, 5);
        let p = 3u32;
        let q = SubspacePartition::new(3000, p).num_subspaces();
        let required = 24.0 * harmonic(u64::from(q)) * (f64::from(p)).log2();
        let inst = instance::random_with_slack(&g, 3000, required + 1.0, 7);
        let x = x_for(&g);
        let red = reduce_color_space(&inst, p, &x, &mut greedy_assign).unwrap();
        for sub in &red.sub_instances {
            sub.instance
                .validate_slack(1.0)
                .expect("slack ≥ 24·H_q·log p preserves (deg+1) feasibility");
        }
    }

    #[test]
    fn assignments_use_subspaces_with_nonempty_intersection() {
        let g = generators::gnp(30, 0.3, 9);
        let inst = instance::random_with_slack(&g, 5000, 80.0, 11);
        let x = x_for(&g);
        let red = reduce_color_space(&inst, 5, &x, &mut greedy_assign).unwrap();
        let partition = SubspacePartition::new(inst.palette(), 5);
        for e in g.edges() {
            let (lo, hi) = partition.range(red.assignment[e.index()]);
            assert!(inst.list(e).count_in_range(lo, hi) >= 1);
        }
    }

    #[test]
    fn virtual_graph_respects_group_cap() {
        let g = generators::star(10);
        let active: Vec<EdgeId> = g.edges().collect();
        let vg = build_virtual_graph(&g, &active, 4);
        assert_eq!(vg.num_edges(), 10);
        assert!(
            vg.max_degree() <= 4,
            "virtual degree {} > cap",
            vg.max_degree()
        );
        // Star center splits into ⌈10/4⌉ = 3 virtual copies + 10 leaves.
        assert_eq!(vg.num_nodes(), 13);
    }

    #[test]
    fn e1_phase_machinery_runs_with_q16() {
        // q ≥ 16 enables levels ≥ 4; Δ̄ = 32 ≥ 2^4 puts spread-out edges in
        // E⁽¹⁾, so the virtual-graph phase path executes.
        let g = generators::complete(18);
        let inst = instance::random_with_slack(&g, 16384, 330.0, 21);
        let x = x_for(&g);
        let red = reduce_color_space(&inst, 16, &x, &mut greedy_assign).unwrap();
        assert!(
            red.stats.e1_edges > 0,
            "E(1) must be nonempty: {:?}",
            red.stats
        );
        assert!(
            red.stats.phases_run >= 1,
            "phases must run: {:?}",
            red.stats
        );
        assert!(red.stats.min_je_surplus >= 0, "|J_e| ≥ 2^(ℓ−1) violated");
        assert!(red.stats.eq2_max_ratio <= red.stats.eq2_bound);
        for sub in &red.sub_instances {
            sub.instance.validate_slack(1.0).expect("(deg+1) residuals");
        }
    }

    #[test]
    fn large_p_forces_singleton_subspaces() {
        let g = generators::path(5);
        let inst = instance::two_delta_minus_one(&g); // palette 3
        let x = x_for(&g);
        let red = reduce_color_space(&inst, 3, &x, &mut greedy_assign).unwrap();
        assert_eq!(red.stats.q, 3);
        // With singleton subspaces, Eq. (2) still holds (trivially bounded).
        assert!(red.stats.eq2_max_ratio <= red.stats.eq2_bound);
    }
}
