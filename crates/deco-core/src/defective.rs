//! The `deg(e)/2β`-defective `O(β²)`-edge-coloring of Section 4.1.
//!
//! Construction (verbatim from the paper):
//!
//! 1. Every node `v` partitions its incident edges into `⌈deg(v)/4β⌉` groups
//!    of at most `4β` edges, numbering the edges inside each group with
//!    distinct values `1..=4β`, and sends each edge its value.
//! 2. An edge that received values `i` and `j` (sorted `i ≤ j`) takes the
//!    *temporary color* `(i, j)`. Inside one group, at most two edges share
//!    a temporary color (the one numbered `i` and the one numbered `j`), so
//!    same-temporary-color edges sharing a group form disjoint paths and
//!    cycles.
//! 3. 3-color those paths/cycles in `O(log* X)` rounds (from the initial
//!    `X`-edge-coloring), using [`deco_algos::deg2`].
//! 4. Final color = `(i, j, path color)` — at most `3·4β(4β+1)/2 = 24β²+6β`
//!    colors.
//!
//! The defect of `e = {u, v}` is at most `⌈deg(u)/4β⌉ + ⌈deg(v)/4β⌉ − 2 ≤
//! deg(e)/2β`: inside `e`'s own groups the path coloring separates it from
//! its temporary-color twins, and every *other* group contributes at most
//! one edge with `e`'s final color.

use deco_algos::deg2;
use deco_graph::{EdgeId, Graph, GraphBuilder, NodeId};
use deco_local::{CostNode, IdAssignment, Network};
use deco_runtime::Runtime;
use std::collections::HashMap;

/// Result of the §4.1 defective edge coloring.
#[derive(Debug, Clone)]
pub struct DefectiveColoring {
    /// Color of every edge, in `0..num_colors`.
    pub colors: Vec<u32>,
    /// Palette bound `3·4β(4β+1)/2 = 24β² + 6β`.
    pub num_colors: u32,
    /// The β parameter used.
    pub beta: u32,
    /// Round cost: 1 (value exchange) + the path/cycle 3-coloring schedule.
    pub cost: CostNode,
    /// Messages delivered by the conflict-path 3-coloring protocol
    /// (identical on every engine).
    pub messages: u64,
}

/// Palette bound of [`defective_edge_coloring`] for a given β:
/// `3·4β(4β+1)/2 = 24β² + 6β`.
///
/// # Panics
///
/// Panics if the bound exceeds `u32::MAX` (β beyond ~13 000; the solver
/// clamps β to Δ̄+1 long before that, since β > Δ̄ already forces zero
/// defect).
pub fn defective_palette(beta: u32) -> u32 {
    let g = 4 * u64::from(beta);
    u32::try_from(3 * (g * (g + 1) / 2)).expect("defective palette must fit in u32")
}

/// Per-edge defect bound `⌈deg(u)/4β⌉ + ⌈deg(v)/4β⌉ − 2` (≤ `deg(e)/2β`).
pub fn defect_bound(g: &Graph, e: EdgeId, beta: u32) -> usize {
    let [u, v] = g.endpoints(e);
    let k = 4 * beta as usize;
    g.degree(u).div_ceil(k) + g.degree(v).div_ceil(k) - 2
}

/// Computes a `deg(e)/2β`-defective edge coloring with at most `24β² + 6β`
/// colors in `O(log* X)` rounds, given a proper `X`-edge-coloring
/// `x_coloring` (with palette bound `x_palette`); the conflict-path
/// 3-coloring protocol runs on whatever engine `rt` carries.
///
/// # Panics
///
/// Panics if `beta == 0`, if `x_coloring` has the wrong length, or (in
/// debug builds) if `x_coloring` is not a proper edge coloring.
pub fn defective_edge_coloring(
    g: &Graph,
    beta: u32,
    x_coloring: &[u32],
    x_palette: u32,
    rt: &Runtime,
) -> DefectiveColoring {
    assert!(beta >= 1, "beta must be at least 1");
    assert_eq!(
        x_coloring.len(),
        g.num_edges(),
        "one initial color per edge"
    );
    debug_assert!(
        deco_graph::coloring::check_edge_coloring(
            g,
            &deco_graph::coloring::EdgeColoring::from_complete(x_coloring.to_vec())
        )
        .is_ok(),
        "x_coloring must be a proper edge coloring"
    );
    let group_cap = 4 * beta as usize;

    // Step 1: group + number each edge at both endpoints (adjacency order is
    // the node's local port order, so this is a 0-round local computation;
    // exchanging the values costs 1 round).
    //
    // side_value[e][s] ∈ 1..=4β, side_group[e][s]: group index at endpoint s
    // (s = 0 for the smaller endpoint, 1 for the larger).
    let m = g.num_edges();
    let mut side_value = vec![[0u32; 2]; m];
    let mut side_group = vec![[0u32; 2]; m];
    for v in g.nodes() {
        for (pos, adj) in g.adjacent(v).iter().enumerate() {
            let e = adj.edge;
            let side = usize::from(g.endpoints(e)[1] == v);
            debug_assert_eq!(g.endpoints(e)[side], v);
            side_value[e.index()][side] = (pos % group_cap) as u32 + 1;
            side_group[e.index()][side] = (pos / group_cap) as u32;
        }
    }

    // Step 2: temporary colors (i ≤ j).
    let temp: Vec<(u32, u32)> = (0..m)
        .map(|ei| {
            let [a, b] = side_value[ei];
            if a <= b {
                (a, b)
            } else {
                (b, a)
            }
        })
        .collect();

    // Step 3: conflict graph — same temporary color AND a shared group.
    // Within one (node, group, temp-color) bucket there are at most 2 edges.
    let mut conflict = GraphBuilder::new(m);
    for v in g.nodes() {
        // bucket key: (group at v, temp color) -> edges.
        let mut buckets: HashMap<(u32, (u32, u32)), Vec<EdgeId>> = HashMap::new();
        for adj in g.adjacent(v) {
            let e = adj.edge;
            let side = usize::from(g.endpoints(e)[1] == v);
            let key = (side_group[e.index()][side], temp[e.index()]);
            buckets.entry(key).or_default().push(e);
        }
        for (key, edges) in buckets {
            assert!(
                edges.len() <= 2,
                "at most 2 edges per (group, temp color) bucket; key={key:?}"
            );
            if edges.len() == 2 {
                conflict.add_edge(NodeId(edges[0].0), NodeId(edges[1].0));
            }
        }
    }
    let conflict = conflict.build().expect("bucket pairs are distinct edges");
    debug_assert!(
        conflict.max_degree() <= 2,
        "conflict components are paths/cycles"
    );

    // 3-color the conflict graph from the X-edge-coloring. Conflicting edges
    // share a node of g, so the X-coloring is proper on the conflict graph;
    // one conflict-graph round costs O(1) rounds of g (shared-node relay).
    let initial: Vec<u64> = x_coloring.iter().map(|&c| u64::from(c)).collect();
    let net = Network::new(&conflict, IdAssignment::Sequential);
    let three = deg2::three_color_max_deg2(&net, initial, u64::from(x_palette).max(2), rt)
        .expect("deg2 schedule always terminates");

    // Step 4: final colors.
    let colors: Vec<u32> = (0..m)
        .map(|ei| {
            let (i, j) = temp[ei];
            // pair index for 1 ≤ i ≤ j ≤ 4β, dense in 0..4β(4β+1)/2.
            let pair = (j - 1) * j / 2 + (i - 1);
            pair * 3 + u32::from(three.colors[ei])
        })
        .collect();
    let num_colors = defective_palette(beta);
    debug_assert!(colors.iter().all(|&c| c < num_colors));

    let cost = CostNode::seq(
        format!("defective-edge-coloring(β={beta})"),
        vec![
            CostNode::leaf("exchange group values", 1),
            CostNode::leaf("3-color conflict paths/cycles", three.rounds),
        ],
    );
    DefectiveColoring {
        colors,
        num_colors,
        beta,
        cost,
        messages: three.messages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deco_algos::edge_adapter;
    use deco_graph::{coloring, generators};

    fn x_coloring_for(g: &Graph) -> (Vec<u32>, u32) {
        let ids: Vec<u64> = (1..=g.num_nodes() as u64).collect();
        let res = edge_adapter::linial_edge_coloring(g, &ids, &Runtime::serial())
            .expect("linial terminates");
        let colors: Vec<u32> = g.edges().map(|e| res.coloring.get(e).unwrap()).collect();
        (colors, res.palette as u32)
    }

    fn check_defective(g: &Graph, beta: u32) -> DefectiveColoring {
        let (xc, xp) = x_coloring_for(g);
        let d = defective_edge_coloring(g, beta, &xc, xp, &Runtime::serial());
        assert_eq!(d.num_colors, defective_palette(beta));
        assert!(d.colors.iter().all(|&c| c < d.num_colors));
        // Defect bounds: both the sharp ⌈·⌉ form and the paper's deg/2β.
        let defects = coloring::edge_defects(g, &d.colors);
        for e in g.edges() {
            let sharp = defect_bound(g, e, beta);
            assert!(
                defects[e.index()] <= sharp,
                "defect {} of {e} exceeds sharp bound {sharp} (β={beta})",
                defects[e.index()]
            );
            assert!(
                defects[e.index()] as f64 <= g.edge_degree(e) as f64 / (2.0 * beta as f64),
                "defect of {e} exceeds deg(e)/2β"
            );
        }
        d
    }

    #[test]
    fn small_beta_on_dense_graphs() {
        check_defective(&generators::complete(12), 1);
        check_defective(&generators::complete(12), 2);
        check_defective(&generators::complete_bipartite(8, 8), 1);
    }

    #[test]
    fn regular_graphs_various_beta() {
        let g = generators::random_regular(40, 8, 3);
        for beta in [1, 2, 3] {
            check_defective(&g, beta);
        }
    }

    #[test]
    fn large_beta_gives_proper_coloring() {
        // β ≥ deg(e)/2 forces defect < 1, i.e. a proper coloring.
        let g = generators::random_regular(20, 4, 5);
        let d = check_defective(&g, 4);
        let defects = coloring::edge_defects(&g, &d.colors);
        assert!(
            defects.iter().all(|&x| x == 0),
            "defects must vanish for large β"
        );
    }

    #[test]
    fn skewed_degrees() {
        check_defective(&generators::star(17), 1);
        check_defective(&generators::caterpillar(10, 6), 1);
        check_defective(&generators::power_law(120, 2.5, 20.0, 2), 1);
    }

    #[test]
    fn rounds_are_logstar() {
        let g = generators::random_regular(60, 6, 7);
        let d = check_defective(&g, 2);
        assert!(
            d.cost.actual_rounds() <= 40,
            "O(log* X) rounds expected, got {}",
            d.cost.actual_rounds()
        );
    }

    #[test]
    fn palette_formula() {
        assert_eq!(defective_palette(1), 30); // 3·(4·5/2)
        assert_eq!(defective_palette(2), 108); // 3·(8·9/2)
    }

    #[test]
    fn empty_and_tiny_graphs() {
        let g = Graph::empty(3);
        let d = defective_edge_coloring(&g, 1, &[], 2, &Runtime::serial());
        assert!(d.colors.is_empty());
        let g = generators::path(2);
        let d = defective_edge_coloring(&g, 1, &[0], 2, &Runtime::serial());
        assert_eq!(d.colors.len(), 1);
    }

    #[test]
    #[should_panic(expected = "beta must be at least 1")]
    fn rejects_beta_zero() {
        let g = generators::path(3);
        let _ = defective_edge_coloring(&g, 0, &[0, 1], 2, &Runtime::serial());
    }
}
