//! The Theorem 4.1 solver: `(deg(e)+1)`-list edge coloring in
//! `log^{O(log log Δ)} Δ + O(log* n)` LOCAL rounds.
//!
//! Recursion structure (§4.3 of the paper):
//!
//! * [`Solver::solve_instance`] solves slack-1 instances via Lemma 4.2
//!   sweeps: a `deg(e)/2β`-defective coloring splits the instance into
//!   `O(β²)` classes whose active subgraphs have slack > β and degree
//!   ≤ Δ̄/2β; the residual degree halves per sweep.
//! * Slack-β instances go through Lemma 4.3 color space reductions with
//!   `p ≈ √Δ̄`: the subspace assignment itself is a small recursive
//!   `(deg+1)`-list instance on a virtual graph with Δ̄ ≤ 2p−1 ≈ 2√Δ̄ — the
//!   polynomial degree reduction that yields the `O(log log Δ)` recursion
//!   depth — and the per-subspace residuals (palette `C/p`, slack divided
//!   by `24·H_{2p}·log p`) recurse in parallel.
//! * Instances with constant degree (or constant palette) bottom out in the
//!   classic base case: Linial's coloring from the initial `X`-edge-coloring
//!   (`O(log* X)` rounds) followed by a constant number of class-elimination
//!   rounds.
//!
//! The solver is *always correct* for any parameter choice: whenever a
//! space reduction's slack requirement is not met (small `β` in clamped
//! practical runs), it falls back to the slack-1 path, which needs nothing
//! but (deg+1)-lists. Parameter strategies reproduce the paper's schedule
//! ([`Strategy::Paper`]), Kuhn SODA'20-shaped parameters
//! ([`Strategy::Kuhn20`]), or fixed small parameters
//! ([`Strategy::ConstantP`]) for ablation.
//!
//! ## Parallel recursion
//!
//! The recursion's logically-parallel composition points — the paper's
//! reason the round budget takes a `max`, not a sum — really do execute in
//! parallel, routed through [`Executor::execute_branches`]:
//!
//! * Lemma 4.3's per-subspace residuals use disjoint color ranges on
//!   edge-disjoint subgraphs and fan out directly;
//! * Lemma 4.2's per-class slack-β solves carry a sequential data
//!   dependency only between *adjacent* classes (a class's residual lists
//!   read the colors of neighboring, earlier classes), so `slack::sweep`
//!   schedules them in dependency wavefronts: classes in the same wave are
//!   mutually non-adjacent and solve concurrently.
//!
//! Parallelism is observationally invisible. Each recursive solve returns a
//! self-contained [`SolveBranch`] — colors, cost subtree, and its own
//! [`SolveStats`] — and branch stats are merged **in branch order** at
//! every join point ([`SolveStats::merge`]; all counters are sums or maxes,
//! so the merged totals are bit-identical to the serial recursion for every
//! thread count). There is no shared mutable state anywhere in the
//! recursion: the serial runtime ([`Runtime::serial`]) reproduces the
//! historical serial behavior exactly, and the differential suite holds
//! every engine to it.
//!
//! Failure is structured, never a panic: exceeding
//! [`SolverConfig::max_depth`] surfaces as [`SolveError::DepthExceeded`]
//! through [`Solver::solve_instance`] / [`solve_pipeline`], and a residual
//! sub-instance that loses (deg+1)-feasibility (an over-optimistic slack
//! claim) degrades to the always-correct slack-1 path, counted in
//! [`SolveStats::slack_fallbacks`].

use crate::instance::ListInstance;
use crate::lists::{ColorList, SubspacePartition};
use crate::slack;
use crate::space;
use deco_algos::{class_elimination, edge_adapter, linial};
use deco_graph::coloring::{Color, EdgeColoring};
use deco_graph::{EdgeId, Graph, LineGraph};
use deco_local::math::harmonic;
use deco_local::{CostNode, Executor, Network};
use deco_runtime::Runtime;
use std::fmt;
use std::time::{Duration, Instant};

/// Parameter strategies for β (Lemma 4.2) and p (Lemma 4.3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Strategy {
    /// The paper's schedule: `β = α·log^{4c} Δ̄`, `p = ⌊√Δ̄⌋`.
    Paper,
    /// Kuhn SODA'20-shaped schedule: `β = α·2^{√log Δ̄}`, `p = 2^{⌈√log C⌉}`
    /// (one-level color space reduction geometry; reproduces the
    /// `2^{O(√log Δ)}` recursion shape inside the same machinery).
    Kuhn20,
    /// Fixed `p`; `β` is set to the single-step slack requirement
    /// `⌈α·24·H_{2p}·log p⌉`. Ablation baseline.
    ConstantP(u32),
}

/// Solver configuration.
#[derive(Debug, Clone, Copy)]
pub struct SolverConfig {
    /// Parameter strategy.
    pub strategy: Strategy,
    /// The paper's "large enough constant" α multiplying β.
    pub alpha: f64,
    /// Maximum edge degree treated as the O(1) base case.
    pub base_dbar: usize,
    /// Palette size at or below which space reduction stops.
    pub small_palette: u32,
    /// Optional clamp on β for bounded-round practical runs (correctness is
    /// unaffected; slack shortfalls fall back to the slack-1 path).
    pub beta_cap: Option<u32>,
    /// Optional clamp on p.
    pub p_cap: Option<u32>,
    /// Hard recursion depth limit (safety net; the recursion provably
    /// terminates well before this).
    pub max_depth: u32,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            strategy: Strategy::Paper,
            alpha: 1.0,
            base_dbar: 8,
            small_palette: 12,
            beta_cap: Some(4),
            p_cap: Some(16),
            max_depth: 256,
        }
    }
}

impl SolverConfig {
    /// The paper's parameters without practical clamps: exactly the
    /// Theorem 4.1 schedule (rounds grow enormous, work stays proportional
    /// to the number of edges).
    pub fn faithful(alpha: f64) -> SolverConfig {
        SolverConfig {
            strategy: Strategy::Paper,
            alpha,
            beta_cap: None,
            p_cap: None,
            ..SolverConfig::default()
        }
    }
}

/// Structured solver failure. The solver never panics on these conditions;
/// they propagate as `Err` through every recursion level — including across
/// parallel branch joins, where the first failing branch *in branch order*
/// wins deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveError {
    /// The recursion exceeded [`SolverConfig::max_depth`].
    DepthExceeded {
        /// The depth that was about to be entered.
        depth: u32,
        /// The configured limit.
        limit: u32,
    },
    /// A framed shard worker failed under the coordinator's hardening
    /// (timed out past the retry budget, disconnected, or sent a malformed
    /// frame). Only framed multi-process runs can produce this; the typed
    /// in-process engines have no shard to lose.
    ShardFailed {
        /// Zero-based index of the failed shard.
        shard: usize,
        /// What the coordinator observed.
        cause: deco_engine::shard::framed::ShardFailure,
    },
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::DepthExceeded { depth, limit } => {
                write!(f, "recursion depth {depth} exceeds the limit {limit}")
            }
            SolveError::ShardFailed { shard, cause } => {
                write!(f, "shard {shard} failed: {cause}")
            }
        }
    }
}

impl std::error::Error for SolveError {}

impl From<deco_engine::shard::framed::ShardFailed> for SolveError {
    fn from(e: deco_engine::shard::framed::ShardFailed) -> SolveError {
        SolveError::ShardFailed {
            shard: e.shard,
            cause: e.cause,
        }
    }
}

/// One solved sub-recursion (a *branch*): the colors of its sub-instance,
/// its cost subtree, and the [`SolveStats`] accumulated beneath it. Every
/// internal solve returns a self-contained branch; join points merge
/// branch stats in branch order ([`SolveStats::merge`]), which is what
/// makes the recursion thread-safe without any shared mutable state.
#[derive(Debug, Clone)]
pub struct SolveBranch {
    /// One color per sub-instance edge, drawn from that edge's list.
    pub colors: Vec<Color>,
    /// Structured round cost of the branch.
    pub cost: CostNode,
    /// Counters of the branch's own recursion subtree.
    pub stats: SolveStats,
}

impl From<Solution> for SolveBranch {
    fn from(sol: Solution) -> SolveBranch {
        SolveBranch {
            colors: sol.colors,
            cost: sol.cost,
            stats: sol.stats,
        }
    }
}

/// Counters describing a solve, used by tests and the experiment harness.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SolveStats {
    /// Lemma 4.2 sweeps executed.
    pub sweeps: u64,
    /// Defective classes that contained edges (work was done).
    pub classes_nonempty: u64,
    /// Total defective classes scheduled (including empty ones).
    pub classes_total: u64,
    /// Lemma 4.3 space reductions executed.
    pub space_reductions: u64,
    /// Recursive subspace-assignment solves (virtual graphs + E⁽²⁾).
    pub assign_solves: u64,
    /// Times a slack instance fell back to the slack-1 path because the
    /// slack requirement `S ≥ 24·H_q·log p` was not met.
    pub slack_fallbacks: u64,
    /// Base cases executed.
    pub base_cases: u64,
    /// Worst Eq. (2) ratio observed across all space reductions.
    pub eq2_worst_ratio: f64,
    /// Maximum recursion depth reached.
    pub max_depth_seen: u32,
    /// Messages delivered by the solve's protocol executions (base-case
    /// Linial runs, defective-coloring conflict-path runs). A sum of
    /// per-run counts that are themselves engine-independent, so the total
    /// is bit-identical on every engine.
    pub messages: u64,
}

impl SolveStats {
    /// Folds another branch's counters into this one. Counts add, extrema
    /// take the max — every field is commutative and associative, so
    /// merging parallel branches in branch order reproduces the serial
    /// recursion's totals bit for bit.
    pub fn merge(&mut self, other: &SolveStats) {
        self.sweeps += other.sweeps;
        self.classes_nonempty += other.classes_nonempty;
        self.classes_total += other.classes_total;
        self.space_reductions += other.space_reductions;
        self.assign_solves += other.assign_solves;
        self.slack_fallbacks += other.slack_fallbacks;
        self.base_cases += other.base_cases;
        self.eq2_worst_ratio = self.eq2_worst_ratio.max(other.eq2_worst_ratio);
        self.max_depth_seen = self.max_depth_seen.max(other.max_depth_seen);
        self.messages += other.messages;
    }
}

/// A complete solve: colors (per instance edge), round cost, statistics.
#[derive(Debug, Clone)]
pub struct Solution {
    /// One color per edge, drawn from that edge's list.
    pub colors: Vec<Color>,
    /// Structured round cost of the whole computation.
    pub cost: CostNode,
    /// Execution counters.
    pub stats: SolveStats,
}

/// The Theorem 4.1 solver, running on a [`Runtime`] that carries whichever
/// engine executes its message-passing sub-protocols (the Linial base-case
/// runs, the defective coloring's conflict-path runs) *and* its parallel
/// recursion branches (per-subspace residuals, per-class slack-β solves).
/// Defaults to the serial reference runtime; pass an engine-backed
/// [`Runtime`] via [`Solver::with_runtime`] for large instances and real
/// worker-thread parallelism. No generics: every engine is one arm of the
/// runtime's `Engine`, and all of them are observationally identical.
///
/// The solver holds no mutable state — all counters live in per-branch
/// [`SolveStats`] merged at join points — so a `&Solver` is freely shared
/// across the engine's worker threads.
#[derive(Debug, Clone, Copy)]
pub struct Solver {
    config: SolverConfig,
    rt: Runtime,
}

impl Solver {
    /// Creates a solver with the given configuration on the serial
    /// reference runtime.
    pub fn new(config: SolverConfig) -> Solver {
        Solver::with_runtime(config, Runtime::serial())
    }

    /// Creates a solver that runs its protocol executions and parallel
    /// recursion branches on `rt`'s engine.
    pub fn with_runtime(config: SolverConfig, rt: Runtime) -> Solver {
        Solver { config, rt }
    }

    /// The active configuration.
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// The runtime the solver executes on.
    pub fn runtime(&self) -> &Runtime {
        &self.rt
    }

    /// Solves a `(deg(e)+1)`-list edge coloring instance given an initial
    /// proper `X`-edge-coloring of the instance graph.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::DepthExceeded`] if the recursion would exceed
    /// [`SolverConfig::max_depth`].
    ///
    /// # Panics
    ///
    /// Panics if `inst` is not a (deg+1)-list instance or `x_coloring` is
    /// not proper with palette `x_palette`.
    pub fn solve_instance(
        &self,
        inst: &ListInstance,
        x_coloring: &[u32],
        x_palette: u32,
    ) -> Result<Solution, SolveError> {
        inst.validate_slack(1.0)
            .expect("instance must be (deg+1)-list");
        let branch = self.solve_deg1(inst, x_coloring, x_palette, 0)?;
        debug_assert!(inst
            .check_solution(&EdgeColoring::from_complete(branch.colors.clone()))
            .is_ok());
        Ok(Solution {
            colors: branch.colors,
            cost: branch.cost,
            stats: branch.stats,
        })
    }

    /// Solves an instance through the slack-S path, treating `slack` as the
    /// instance's claimed slack (the caller asserts `|L_e| > slack·deg(e)`;
    /// `slack ≥ 1` is validated, the rest trusted). With enough claimed
    /// slack this drives Lemma 4.3 space reductions directly; if a residual
    /// sub-instance turns out not to be (deg+1)-feasible — the claim was
    /// too optimistic — the solver degrades to the slack-1 path on the
    /// spot and counts it in [`SolveStats::slack_fallbacks`] instead of
    /// panicking.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::DepthExceeded`] if the recursion would exceed
    /// [`SolverConfig::max_depth`].
    ///
    /// # Panics
    ///
    /// Panics if `inst` is not at least a (deg+1)-list instance.
    pub fn solve_slack_instance(
        &self,
        inst: &ListInstance,
        x_coloring: &[u32],
        x_palette: u32,
        slack: f64,
    ) -> Result<Solution, SolveError> {
        inst.validate_slack(1.0)
            .expect("instance must be at least (deg+1)-list");
        let branch = self.solve_with_slack(inst, x_coloring, x_palette, slack, 0)?;
        debug_assert!(inst
            .check_solution(&EdgeColoring::from_complete(branch.colors.clone()))
            .is_ok());
        Ok(Solution {
            colors: branch.colors,
            cost: branch.cost,
            stats: branch.stats,
        })
    }

    fn check_depth(&self, depth: u32) -> Result<(), SolveError> {
        if depth >= self.config.max_depth {
            return Err(SolveError::DepthExceeded {
                depth,
                limit: self.config.max_depth,
            });
        }
        Ok(())
    }

    /// Slack-1 path (Lemma 4.2 + base case). The sweeps themselves are a
    /// sequential chain (each residual depends on the previous sweep), but
    /// the per-class solves inside each sweep fan out on the executor.
    fn solve_deg1(
        &self,
        inst: &ListInstance,
        x_coloring: &[u32],
        x_palette: u32,
        depth: u32,
    ) -> Result<SolveBranch, SolveError> {
        self.check_depth(depth)?;
        let mut stats = SolveStats {
            max_depth_seen: depth,
            ..SolveStats::default()
        };
        let m = inst.graph().num_edges();
        if m == 0 {
            return Ok(SolveBranch {
                colors: Vec::new(),
                cost: CostNode::free("empty instance"),
                stats,
            });
        }
        let dbar = inst.max_edge_degree();
        if dbar <= self.config.base_dbar {
            let (colors, cost, messages) = self.base_case(inst, x_coloring, x_palette);
            stats.base_cases += 1;
            stats.messages += messages;
            return Ok(SolveBranch {
                colors,
                cost,
                stats,
            });
        }
        let beta = self.beta_for(dbar, inst.palette());

        // Lemma 4.2 loop: sweep, write back, recurse on the residual.
        let mut final_colors: Vec<Option<Color>> = vec![None; m];
        let mut cur = inst.clone();
        let mut cur_x = x_coloring.to_vec();
        let mut map: Vec<EdgeId> = inst.graph().edges().collect();
        let mut costs: Vec<CostNode> = Vec::new();
        loop {
            let cur_dbar = cur.max_edge_degree();
            if cur.graph().num_edges() == 0 {
                break;
            }
            if cur_dbar <= self.config.base_dbar {
                let (colors, cost, messages) = self.base_case(&cur, &cur_x, x_palette);
                stats.base_cases += 1;
                stats.messages += messages;
                for (local, &orig) in map.iter().enumerate() {
                    final_colors[orig.index()] = Some(colors[local]);
                }
                costs.push(cost);
                break;
            }
            stats.sweeps += 1;
            let inner = |si: &ListInstance, sx: &[u32]| {
                self.solve_with_slack(si, sx, x_palette, f64::from(beta), depth + 1)
            };
            let out = slack::sweep(&cur, &cur_x, x_palette, beta, &self.rt, &inner)?;
            stats.classes_nonempty += out.stats.classes_nonempty;
            stats.classes_total += out.stats.classes_total;
            stats.messages += out.stats.messages;
            stats.merge(&out.inner_stats);
            for (local, &orig) in map.iter().enumerate() {
                if let Some(c) = out.colors[local] {
                    final_colors[orig.index()] = Some(c);
                }
            }
            costs.push(out.cost);
            let res = slack::residual_after_sweep(&cur, &cur_x, &out.colors);
            assert!(
                res.instance.max_edge_degree() <= cur_dbar / 2,
                "Lemma 4.2: residual degree must halve ({} -> {})",
                cur_dbar,
                res.instance.max_edge_degree()
            );
            map = res.edge_map.iter().map(|&le| map[le.index()]).collect();
            cur = res.instance;
            cur_x = res.x_coloring;
        }
        let colors: Vec<Color> = final_colors
            .into_iter()
            .map(|c| c.expect("all edges colored"))
            .collect();
        Ok(SolveBranch {
            colors,
            cost: CostNode::seq(format!("solve-slack1(Δ̄={dbar}, β={beta})"), costs),
            stats,
        })
    }

    /// Slack-S path (Lemma 4.3 / Lemma 4.5 unrolled one step at a time).
    /// The per-subspace residuals are edge-disjoint with disjoint color
    /// ranges, so they execute as parallel branches on the executor.
    fn solve_with_slack(
        &self,
        inst: &ListInstance,
        x_coloring: &[u32],
        x_palette: u32,
        slack_value: f64,
        depth: u32,
    ) -> Result<SolveBranch, SolveError> {
        self.check_depth(depth)?;
        let dbar = inst.max_edge_degree();
        let c_palette = inst.palette();
        if inst.graph().num_edges() == 0 {
            return Ok(SolveBranch {
                colors: Vec::new(),
                cost: CostNode::free("empty instance"),
                stats: SolveStats {
                    max_depth_seen: depth,
                    ..SolveStats::default()
                },
            });
        }
        if dbar <= self.config.base_dbar || c_palette <= self.config.small_palette {
            return self.solve_deg1(inst, x_coloring, x_palette, depth);
        }
        let p = self.p_for(dbar, c_palette);
        let feasible = p >= 2
            && p <= c_palette
            && 2 * p as usize - 1 < dbar
            && slack_value >= space_requirement(c_palette, p);
        if !feasible {
            let mut branch = self.solve_deg1(inst, x_coloring, x_palette, depth)?;
            branch.stats.slack_fallbacks += 1;
            return Ok(branch);
        }

        let mut stats = SolveStats {
            max_depth_seen: depth,
            space_reductions: 1,
            ..SolveStats::default()
        };
        // The assignment solves are inherently sequential (each phase reads
        // the assignments of earlier phases), so they run inline; their
        // branch stats accumulate into this frame's stats in call order.
        let mut assign_stats = SolveStats::default();
        let red = {
            let mut assign =
                |ai: &ListInstance, ax: &[u32]| -> Result<(Vec<Color>, CostNode), SolveError> {
                    let b = self.solve_deg1(ai, ax, x_palette, depth + 1)?;
                    assign_stats.assign_solves += 1;
                    assign_stats.merge(&b.stats);
                    Ok((b.colors, b.cost))
                };
            space::reduce_color_space(inst, p, x_coloring, &mut assign)?
        };
        stats.merge(&assign_stats);
        stats.eq2_worst_ratio = stats.eq2_worst_ratio.max(red.stats.eq2_max_ratio);

        // If any residual lost (deg+1)-feasibility, the claimed slack was
        // too optimistic for this reduction: degrade to the always-correct
        // slack-1 path on the whole instance instead of panicking.
        let new_slack = slack_value / space_requirement(c_palette, p);
        if red
            .sub_instances
            .iter()
            .any(|sub| sub.instance.validate_slack(1.0).is_err())
        {
            stats.slack_fallbacks += 1;
            let branch = self.solve_deg1(inst, x_coloring, x_palette, depth)?;
            stats.merge(&branch.stats);
            let cost = CostNode::seq(
                format!(
                    "solve-slack-S(Δ̄={dbar}, C={c_palette}, p={p}): residual slack \
                     shortfall, slack-1 fallback"
                ),
                vec![red.cost, branch.cost],
            );
            return Ok(SolveBranch {
                colors: branch.colors,
                cost,
                stats,
            });
        }

        // Per-subspace residuals: disjoint color ranges on edge-disjoint
        // subgraphs — truly parallel branches; each retains slack
        // ≥ S / (24·H_q·log p). Branch results are merged in branch order.
        let weights: Vec<usize> = red
            .sub_instances
            .iter()
            .map(|sub| sub.instance.graph().num_edges())
            .collect();
        let branches = self.rt.execute_branches(&weights, |i| {
            let _span = deco_trace::span(deco_trace::Phase::SolverBranch);
            let sub = &red.sub_instances[i];
            self.solve_with_slack(
                &sub.instance,
                &sub.x_coloring,
                x_palette,
                new_slack,
                depth + 1,
            )
        });
        let mut colors: Vec<Option<Color>> = vec![None; inst.graph().num_edges()];
        let mut children: Vec<CostNode> = Vec::new();
        for (sub, branch) in red.sub_instances.iter().zip(branches) {
            let branch = branch?;
            for (idx, &pe) in sub.edge_map.iter().enumerate() {
                colors[pe.index()] = Some(branch.colors[idx] + sub.color_offset);
            }
            stats.merge(&branch.stats);
            children.push(branch.cost);
        }
        let cost = CostNode::seq(
            format!("solve-slack-S(Δ̄={dbar}, C={c_palette}, p={p})"),
            vec![
                red.cost,
                CostNode::par("parallel subspace instances", children),
            ],
        );
        let colors: Vec<Color> = colors
            .into_iter()
            .map(|c| c.expect("subspaces cover all edges"))
            .collect();
        debug_assert!(inst
            .check_solution(&EdgeColoring::from_complete(colors.clone()))
            .is_ok());
        Ok(SolveBranch {
            colors,
            cost,
            stats,
        })
    }

    /// Base case `T(O(1), S, C) = O(log* X)`: Linial from the initial
    /// `X`-coloring, then one class-elimination round per (constantly many)
    /// class. A leaf of the recursion — the caller counts it in
    /// `SolveStats::base_cases`.
    fn base_case(
        &self,
        inst: &ListInstance,
        x_coloring: &[u32],
        x_palette: u32,
    ) -> (Vec<Color>, CostNode, u64) {
        let g = inst.graph();
        if g.num_edges() == 0 {
            return (Vec::new(), CostNode::free("empty base case"), 0);
        }
        let lg = LineGraph::of(g);
        // Linial on the line graph from the X-coloring (IDs are unused by
        // the protocol; the network just needs some for bookkeeping).
        let net = Network::new(lg.graph(), deco_local::IdAssignment::Sequential);
        let initial: Vec<u64> = x_coloring.iter().map(|&c| u64::from(c)).collect();
        let lin = linial::color_from_initial(&net, initial, u64::from(x_palette).max(2), &self.rt)
            .expect("fixed schedule terminates");
        let palette = u32::try_from(lin.palette).expect("constant-degree palettes are small");
        let lists: Vec<Vec<Color>> = inst.lists().iter().map(|l| l.as_slice().to_vec()).collect();
        let (colors, elim_rounds) =
            class_elimination::list_color_by_classes(lg.graph(), &lists, &lin.colors, palette);
        let cost = CostNode::seq(
            format!("base-case(Δ̄={})", g.max_edge_degree()),
            vec![
                CostNode::leaf("Linial from X-coloring (log* X)", lin.rounds),
                CostNode::leaf("eliminate O(1) classes", elim_rounds),
            ],
        );
        (colors, cost, lin.messages)
    }

    fn beta_for(&self, dbar: usize, c_palette: u32) -> u32 {
        let log_d = (dbar as f64).log2().max(1.0);
        let c_exp = palette_exponent(c_palette, dbar);
        let raw = match self.config.strategy {
            Strategy::Paper => self.config.alpha * log_d.powf(4.0 * c_exp),
            Strategy::Kuhn20 => self.config.alpha * 2f64.powf(log_d.sqrt()),
            Strategy::ConstantP(p0) => self.config.alpha * space_requirement(c_palette, p0.max(2)),
        };
        let beta = if raw >= u32::MAX as f64 {
            u32::MAX
        } else {
            raw.ceil().max(1.0) as u32
        };
        // β > Δ̄ adds nothing: defects are integral, so deg(e)/2β < 1 (a
        // proper coloring) is already reached at β = Δ̄; clamping keeps the
        // defective palette representable while preserving every guarantee.
        let beta = beta.min(dbar as u32 + 1);
        match self.config.beta_cap {
            Some(cap) => beta.min(cap).max(1),
            None => beta.max(1),
        }
    }

    fn p_for(&self, dbar: usize, c_palette: u32) -> u32 {
        let raw = match self.config.strategy {
            Strategy::Paper => (dbar as f64).sqrt().floor() as u32,
            Strategy::Kuhn20 => {
                let log_c = f64::from(c_palette).log2().max(1.0);
                2f64.powf(log_c.sqrt().ceil()) as u32
            }
            Strategy::ConstantP(p0) => p0,
        };
        let p = raw.clamp(2, c_palette);
        match self.config.p_cap {
            Some(cap) => p.min(cap).max(2),
            None => p,
        }
    }
}

/// Exponent `c` with `C ≤ Δ̄^c` (at least 1), from §4.3.
fn palette_exponent(c_palette: u32, dbar: usize) -> f64 {
    let ld = (dbar.max(2) as f64).ln();
    (f64::from(c_palette.max(2)).ln() / ld).max(1.0)
}

/// The slack divisor / requirement of one Lemma 4.3 step:
/// `24·H_q·log₂ p` for the actual `q` of the partition.
pub fn space_requirement(c_palette: u32, p: u32) -> f64 {
    let p = p.clamp(2, c_palette.max(2));
    let q = if c_palette >= p {
        SubspacePartition::new(c_palette, p).num_subspaces()
    } else {
        c_palette.max(1)
    };
    24.0 * harmonic(u64::from(q)) * f64::from(p).log2().max(1.0)
}

/// Structured report of one end-to-end pipeline run: everything an
/// experiment table or a caller needs, derived once here instead of
/// re-derived by hand at every call site.
///
/// The observational fields — [`RunReport::colors`], [`RunReport::rounds`],
/// [`RunReport::messages`], [`RunReport::solve_stats`],
/// [`RunReport::cost`] — are bit-identical on every engine (the
/// differential suites pin this). [`RunReport::engine_descriptor`] and
/// [`RunReport::wall_time`] describe the run itself: which engine executed
/// it and how long it took on the wall clock.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The solved coloring (complete, proper, on-list).
    pub colors: EdgeColoring,
    /// Total charged LOCAL rounds: the initial `X`-coloring's `O(log* n)`
    /// rounds plus the solve's adaptive rounds
    /// ([`CostNode::actual_rounds`] of [`RunReport::cost`]).
    pub rounds: u64,
    /// Total messages delivered across every protocol execution of the
    /// pipeline (initial Linial run + the solve's protocol runs).
    pub messages: u64,
    /// Counters of the solver recursion.
    pub solve_stats: SolveStats,
    /// Stable descriptor of the engine that executed the run
    /// ([`Runtime::descriptor`], e.g. `serial` or
    /// `sharded(shards=4,threads=2,transport=process)`).
    pub engine_descriptor: String,
    /// Wall-clock duration of the whole pipeline on this engine. The only
    /// field that legitimately varies between runs.
    pub wall_time: Duration,
    /// The palette of the initial `X`-edge-coloring (`X = O(Δ̄²)`).
    pub x_palette: u32,
    /// Rounds of the initial coloring (`O(log* n)`).
    pub x_rounds: u64,
    /// Structured round cost of the solve (excludes the initial coloring).
    pub cost: CostNode,
    /// Digested trace metrics of the run (per-phase wall time, counters,
    /// samples), populated when tracing is enabled via `DECO_TRACE` /
    /// `RuntimeBuilder::trace`; `None` when tracing is off. Outside the
    /// determinism contract (wall times vary run to run).
    pub metrics: Option<deco_trace::MetricsReport>,
}

/// Solves the `(2Δ−1)`-edge coloring problem on `g` end to end — Linial
/// initial coloring (`O(log* n)`) + the Theorem 4.1 solver — on whatever
/// engine `rt` carries. The solver is deterministic, so everything but
/// [`RunReport::wall_time`] is identical for every engine and thread
/// count; only the substrate speed changes.
///
/// A thin wrapper over the session API: opens a
/// [`Session`](crate::session::Session) and returns its zero-update report,
/// so static and dynamic callers run the identical pipeline.
///
/// # Errors
///
/// Returns [`SolveError`] when the solver recursion fails structurally
/// (e.g. [`SolveError::DepthExceeded`]).
pub fn solve_two_delta_minus_one(
    g: &Graph,
    node_ids: &[u64],
    config: SolverConfig,
    rt: &Runtime,
) -> Result<RunReport, SolveError> {
    let mut session = crate::session::Session::open(g, node_ids, config, rt)?;
    Ok(session.report())
}

/// Solves an arbitrary `(deg(e)+1)`-list instance over `g` end to end on
/// whatever engine `rt` carries: every message-passing protocol execution
/// (the initial Linial edge coloring, the solver's base-case and
/// defective-coloring runs) *and* every parallel recursion branch routes
/// through the runtime's engine.
///
/// # Errors
///
/// Returns [`SolveError`] when the solver recursion fails structurally.
///
/// # Panics
///
/// Panics if `inst.graph()` differs structurally from `g` or the instance
/// is not (deg+1)-feasible.
pub fn solve_pipeline(
    g: &Graph,
    inst: ListInstance,
    node_ids: &[u64],
    config: SolverConfig,
    rt: &Runtime,
) -> Result<RunReport, SolveError> {
    assert_eq!(
        inst.graph().num_edges(),
        g.num_edges(),
        "instance must match graph"
    );
    let start = Instant::now();
    let scope = deco_trace::run_scope();
    let pipeline_span = deco_trace::span(deco_trace::Phase::Pipeline);
    let run = || -> Result<_, SolveError> {
        let x = edge_adapter::linial_edge_coloring(g, node_ids, rt).expect("Linial terminates");
        let x_coloring: Vec<u32> = g
            .edges()
            .map(|e| x.coloring.get(e).expect("complete"))
            .collect();
        let x_palette = u32::try_from(x.palette).expect("X = O(Δ̄²) fits u32");
        let solver = Solver::with_runtime(config, *rt);
        let solution = solver.solve_instance(&inst, &x_coloring, x_palette)?;
        let coloring = EdgeColoring::from_complete(solution.colors.clone());
        inst.check_solution(&coloring)
            .expect("solver output must be valid");
        Ok((x, coloring, x_palette, solution))
    };
    let (x, coloring, x_palette, solution) = match run() {
        Ok(parts) => parts,
        Err(e) => {
            pipeline_span.cancel();
            let _ = scope.finish();
            return Err(e);
        }
    };
    drop(pipeline_span);
    let metrics = scope.finish();
    Ok(RunReport {
        colors: coloring,
        rounds: x.rounds + solution.cost.actual_rounds(),
        messages: x.messages + solution.stats.messages,
        solve_stats: solution.stats,
        engine_descriptor: rt.descriptor(),
        wall_time: start.elapsed(),
        x_palette,
        x_rounds: x.rounds,
        cost: solution.cost,
        metrics,
    })
}

/// Builds the (deg+1)-list instance view of an explicit list set.
pub fn instance_from_lists(g: &Graph, lists: Vec<Vec<Color>>, palette: u32) -> ListInstance {
    let lists = lists.into_iter().map(ColorList::new).collect();
    ListInstance::new_unchecked(g.clone(), lists, palette)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance;
    use deco_graph::generators;

    fn ids_for(g: &Graph) -> Vec<u64> {
        (1..=g.num_nodes() as u64).collect()
    }

    fn solve_and_check(g: &Graph, config: SolverConfig) -> RunReport {
        let res = solve_two_delta_minus_one(g, &ids_for(g), config, &Runtime::serial())
            .expect("solver succeeds");
        let bound = (2 * g.max_degree()).saturating_sub(1).max(1);
        assert!(res.colors.distinct_colors() <= bound);
        res
    }

    #[test]
    fn solves_small_dense_graphs() {
        for g in [
            generators::complete(10),
            generators::complete_bipartite(7, 7),
            generators::petersen(),
        ] {
            solve_and_check(&g, SolverConfig::default());
        }
    }

    #[test]
    fn solves_regular_graphs_default_config() {
        for (n, d, seed) in [(40, 6, 1), (60, 10, 2), (30, 16, 3)] {
            let g = generators::random_regular(n, d, seed);
            let res = solve_and_check(&g, SolverConfig::default());
            assert!(res.solve_stats.sweeps > 0);
        }
    }

    #[test]
    fn solves_with_faithful_parameters() {
        // Faithful (unclamped) paper parameters: rounds charged are huge but
        // the work is proportional to the edges — must still terminate.
        let g = generators::random_regular(40, 12, 4);
        let res = solve_and_check(&g, SolverConfig::faithful(1.0));
        assert!(res.solve_stats.sweeps > 0);
        // β = log^4(Δ̄) is far above Δ̄ here, so classes are mostly empty.
        assert!(res.solve_stats.classes_total > res.solve_stats.classes_nonempty);
    }

    #[test]
    fn list_instance_pipeline() {
        let g = generators::random_regular(30, 8, 5);
        let inst = instance::random_deg_plus_one(&g, 3 * g.max_edge_degree() as u32, 6);
        let res = solve_pipeline(
            &g,
            inst.clone(),
            &ids_for(&g),
            SolverConfig::default(),
            &Runtime::serial(),
        )
        .expect("solver succeeds");
        inst.check_solution(&res.colors)
            .expect("on-list proper coloring");
        // The report's totals are self-consistent with its parts.
        assert_eq!(res.rounds, res.x_rounds + res.cost.actual_rounds());
        assert!(res.messages >= res.solve_stats.messages);
        assert_eq!(res.engine_descriptor, "serial");
    }

    #[test]
    fn space_reduction_kicks_in_with_enough_slack() {
        // Force the slack path: big palette, huge slack, moderate degree.
        let g = generators::random_regular(36, 12, 7);
        let inst = instance::random_with_slack(&g, 6000, 130.0, 8);
        let x = edge_adapter::linial_edge_coloring(&g, &ids_for(&g), &Runtime::serial()).unwrap();
        let xc: Vec<u32> = g.edges().map(|e| x.coloring.get(e).unwrap()).collect();
        let solver = Solver::new(SolverConfig {
            beta_cap: None,
            p_cap: None,
            small_palette: 8,
            base_dbar: 6,
            ..SolverConfig::default()
        });
        // Drive solve_with_slack directly via a tiny shim: use solve_instance
        // on the slack instance (slack ≥ 1 implies (deg+1)), then also check
        // the slack path is exercised through sweeps' inner calls.
        let sol = solver
            .solve_instance(&inst, &xc, x.palette as u32)
            .expect("solver succeeds");
        inst.check_solution(&EdgeColoring::from_complete(sol.colors))
            .unwrap();
    }

    #[test]
    fn kuhn20_and_constantp_strategies_solve() {
        let g = generators::random_regular(40, 8, 9);
        for strategy in [Strategy::Kuhn20, Strategy::ConstantP(3)] {
            let cfg = SolverConfig {
                strategy,
                ..SolverConfig::default()
            };
            solve_and_check(&g, cfg);
        }
    }

    #[test]
    fn sparse_graphs_hit_base_case_directly() {
        let g = generators::cycle(200);
        let res = solve_and_check(&g, SolverConfig::default());
        assert_eq!(res.solve_stats.sweeps, 0);
        assert_eq!(res.solve_stats.base_cases, 1);
        // O(log* n) + O(1): tiny round count.
        assert!(res.cost.actual_rounds() < 200);
    }

    #[test]
    fn cost_tree_is_structured() {
        let g = generators::random_regular(30, 10, 11);
        let res = solve_and_check(&g, SolverConfig::default());
        assert!(res.cost.size() > 3);
        assert!(res.cost.actual_rounds() > 0);
        let rendered = res.cost.render();
        assert!(rendered.contains("solve-slack1"));
    }

    #[test]
    fn deterministic_given_same_inputs() {
        let g = generators::random_regular(24, 6, 13);
        let rt = Runtime::serial();
        let a = solve_two_delta_minus_one(&g, &ids_for(&g), SolverConfig::default(), &rt).unwrap();
        let b = solve_two_delta_minus_one(&g, &ids_for(&g), SolverConfig::default(), &rt).unwrap();
        assert_eq!(a.colors, b.colors);
        assert_eq!(a.cost, b.cost);
        assert_eq!(a.solve_stats, b.solve_stats);
        assert_eq!(a.messages, b.messages);
    }

    #[test]
    fn depth_limit_is_a_structured_error() {
        // Any graph that needs at least one sweep recurses to depth 1, so a
        // limit of 1 must surface as Err — the process must not abort.
        let g = generators::random_regular(40, 6, 1);
        let cfg = SolverConfig {
            max_depth: 1,
            ..SolverConfig::default()
        };
        let err = solve_two_delta_minus_one(&g, &ids_for(&g), cfg, &Runtime::serial()).unwrap_err();
        assert_eq!(err, SolveError::DepthExceeded { depth: 1, limit: 1 });
        // A zero limit refuses even the root call.
        let cfg0 = SolverConfig {
            max_depth: 0,
            ..SolverConfig::default()
        };
        let err0 =
            solve_two_delta_minus_one(&g, &ids_for(&g), cfg0, &Runtime::serial()).unwrap_err();
        assert_eq!(err0, SolveError::DepthExceeded { depth: 0, limit: 0 });
    }

    #[test]
    fn depth_error_formats() {
        let e = SolveError::DepthExceeded { depth: 7, limit: 7 };
        assert!(e.to_string().contains("depth 7"));
    }

    #[test]
    fn stats_merge_is_field_wise_sum_and_max() {
        let mut a = SolveStats {
            sweeps: 2,
            base_cases: 1,
            eq2_worst_ratio: 0.5,
            max_depth_seen: 3,
            ..SolveStats::default()
        };
        let b = SolveStats {
            sweeps: 3,
            slack_fallbacks: 1,
            eq2_worst_ratio: 1.5,
            max_depth_seen: 2,
            ..SolveStats::default()
        };
        a.merge(&b);
        assert_eq!(a.sweeps, 5);
        assert_eq!(a.base_cases, 1);
        assert_eq!(a.slack_fallbacks, 1);
        assert!((a.eq2_worst_ratio - 1.5).abs() < 1e-12);
        assert_eq!(a.max_depth_seen, 3);
    }

    #[test]
    fn overclaimed_slack_degrades_to_fallback_not_panic() {
        // Claim far more slack than the lists actually have: the space
        // reduction runs, some residual loses (deg+1)-feasibility, and the
        // solver must degrade to the slack-1 path (counted) — never panic —
        // while still returning a valid coloring. Tight (deg+1)-lists over a
        // huge palette make the per-subspace intersections collapse.
        let g = generators::random_regular(36, 12, 7);
        let inst = instance::random_deg_plus_one(&g, 6000, 8);
        let x = edge_adapter::linial_edge_coloring(&g, &ids_for(&g), &Runtime::serial()).unwrap();
        let xc: Vec<u32> = g.edges().map(|e| x.coloring.get(e).unwrap()).collect();
        let solver = Solver::new(SolverConfig {
            beta_cap: None,
            p_cap: None,
            small_palette: 8,
            base_dbar: 6,
            ..SolverConfig::default()
        });
        let claimed = 1e6;
        let sol = solver
            .solve_slack_instance(&inst, &xc, x.palette as u32, claimed)
            .expect("fallback keeps the solve alive");
        inst.check_solution(&EdgeColoring::from_complete(sol.colors))
            .expect("valid coloring despite the fallback");
        assert!(
            sol.stats.slack_fallbacks > 0,
            "the degraded path must be counted: {:?}",
            sol.stats
        );
    }

    #[test]
    fn empty_and_tiny() {
        solve_and_check(&Graph::empty(4), SolverConfig::default());
        solve_and_check(&generators::path(2), SolverConfig::default());
    }
}
