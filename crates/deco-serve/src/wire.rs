//! The serving wire protocol: newline-delimited flat JSON frames.
//!
//! Every frame is one line, one flat JSON object, round-trip parseable by
//! `deco_trace::json::parse_object` — the same discipline as the trace
//! sink and the bench record files, so any line a daemon ever emits can be
//! re-read by the tools already in the repo. Requests carry a
//! client-chosen `id` that the daemon echoes on every frame it emits for
//! that request, which is what lets one connection interleave progress
//! events with terminal responses.
//!
//! Request lines (`"req"` discriminator): `solve`, `open_session`,
//! `update`, `close_session`, `status`, `ping`, `shutdown`. Response
//! lines (`"resp"` discriminator): `report`, `session_opened`, `updated`,
//! `session_closed`, `status`, `pong`, `progress`, `error`,
//! `shutting_down`. Reports embed the [`RunReportLine`] /
//! [`UpdateReportLine`] fields flat in the frame (the codecs tolerate the
//! extra framing keys), so a response line minus its framing fields *is*
//! a valid report artifact line.
//!
//! ## Logical frame accounting
//!
//! [`ResponseFrame::wire_cost`] is the length of the frame's *canonical*
//! encoding — the encoding with the volatile fields (wall times, queue
//! waits, progress elapsed, live queue depths) zeroed. Both ends count
//! frames once per logical line and bytes at canonical cost, which makes
//! the accounting bit-identical whether a request travels over TCP, a
//! Unix socket, or the in-process test transport — the same invariant the
//! framed shard transports pin for shard traffic.

use deco_core::jsonl::{
    solve_error_from_fields, write_solve_error_fields, RunReportLine, UpdateReportLine,
};
use deco_core::SolveError;
use deco_graph::{EdgeUpdate, Graph, GraphBuilder};
use deco_trace::json::{Fields, ObjectWriter};
use std::path::PathBuf;

/// Where a request's graph comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphSource {
    /// An inline edge list on `nodes` nodes; node ids are `1..=nodes`.
    Inline {
        /// Number of nodes (isolated nodes allowed).
        nodes: usize,
        /// Endpoint pairs, in the edge order the report's colors index.
        edges: Vec<(u32, u32)>,
    },
    /// A `DECOSNAP` binary snapshot on the daemon's filesystem.
    Snapshot(PathBuf),
}

impl GraphSource {
    /// Captures a built graph as an inline source (edge-id order is
    /// preserved, so the daemon rebuilds the identical graph).
    pub fn from_graph(g: &Graph) -> GraphSource {
        GraphSource::Inline {
            nodes: g.num_nodes(),
            edges: g
                .edges()
                .map(|e| {
                    let [u, v] = g.endpoints(e);
                    (u.0, v.0)
                })
                .collect(),
        }
    }

    /// Materializes the graph: builds the inline edge list or reads the
    /// snapshot file.
    ///
    /// # Errors
    ///
    /// A description of the invalid edge or unreadable snapshot.
    pub fn load(&self) -> Result<Graph, String> {
        match self {
            GraphSource::Inline { nodes, edges } => {
                let mut b = GraphBuilder::with_capacity(*nodes, edges.len());
                for &(u, v) in edges {
                    b.try_add_edge(u.into(), v.into())
                        .map_err(|e| format!("bad edge ({u}, {v}): {e}"))?;
                }
                b.build().map_err(|e| e.to_string())
            }
            GraphSource::Snapshot(path) => deco_graph::io::read_snapshot_file(path)
                .map_err(|e| format!("cannot read snapshot {}: {e}", path.display())),
        }
    }
}

/// A client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// One-shot solve of a graph; the terminal response is `report`.
    Solve {
        /// The graph to color.
        graph: GraphSource,
        /// Per-request engine descriptor (`"serial"`,
        /// `"barrier(threads=2)"`, …); `None` uses the daemon default.
        engine: Option<String>,
        /// Ask for streamed `progress` frames while the solve runs.
        progress: bool,
    },
    /// Opens a named churn session (solves the base graph); terminal
    /// response is `session_opened`.
    OpenSession {
        /// Client-chosen session name, unique per daemon.
        session: String,
        /// The base graph.
        graph: GraphSource,
        /// Per-session engine descriptor; `None` uses the daemon default.
        engine: Option<String>,
    },
    /// Applies one edge update to an open session; terminal response is
    /// `updated`.
    Update {
        /// The session to update.
        session: String,
        /// The update to apply.
        update: EdgeUpdate,
    },
    /// Closes a session; terminal response is `session_closed`.
    CloseSession {
        /// The session to close.
        session: String,
    },
    /// Asks for a `status` snapshot (answered inline, never queued).
    Status,
    /// Liveness probe; the worker sleeps `delay_ms` before answering
    /// `pong` — the artificial-load knob the queue tests use.
    Ping {
        /// Milliseconds the worker holds the request.
        delay_ms: u64,
    },
    /// Asks the daemon to drain in-flight work and exit; terminal
    /// response is `shutting_down`, sent after the queue is empty.
    Shutdown,
}

/// A request line: client-chosen `id` plus the request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestFrame {
    /// Echoed verbatim on every response frame for this request.
    pub id: String,
    /// The request itself.
    pub req: Request,
}

impl RequestFrame {
    /// Encodes the frame as its canonical single line (no newline).
    pub fn encode(&self) -> String {
        let mut w = ObjectWriter::new();
        w.string("id", &self.id);
        match &self.req {
            Request::Solve {
                graph,
                engine,
                progress,
            } => {
                w.string("req", "solve");
                write_graph(&mut w, graph);
                if let Some(engine) = engine {
                    w.string("engine", engine);
                }
                if *progress {
                    w.bool("progress", true);
                }
            }
            Request::OpenSession {
                session,
                graph,
                engine,
            } => {
                w.string("req", "open_session").string("session", session);
                write_graph(&mut w, graph);
                if let Some(engine) = engine {
                    w.string("engine", engine);
                }
            }
            Request::Update { session, update } => {
                let (u, v) = update.endpoints();
                w.string("req", "update")
                    .string("session", session)
                    .string(
                        "op",
                        if update.is_insert() {
                            "insert"
                        } else {
                            "remove"
                        },
                    )
                    .u64("u", u64::from(u.0))
                    .u64("v", u64::from(v.0));
            }
            Request::CloseSession { session } => {
                w.string("req", "close_session").string("session", session);
            }
            Request::Status => {
                w.string("req", "status");
            }
            Request::Ping { delay_ms } => {
                w.string("req", "ping");
                if *delay_ms > 0 {
                    w.u64("delay_ms", *delay_ms);
                }
            }
            Request::Shutdown => {
                w.string("req", "shutdown");
            }
        }
        w.finish()
    }

    /// Parses a request line.
    ///
    /// # Errors
    ///
    /// A description of the first syntax or schema problem — the daemon
    /// wraps it in a `malformed` error frame.
    pub fn parse(line: &str) -> Result<RequestFrame, String> {
        let fields = Fields::parse(line)?;
        let id = fields.str("id")?.to_string();
        let req = match fields.str("req")? {
            "solve" => Request::Solve {
                graph: parse_graph(&fields)?,
                engine: fields.opt_str("engine")?.map(str::to_string),
                progress: opt_bool(&fields, "progress")?,
            },
            "open_session" => Request::OpenSession {
                session: fields.str("session")?.to_string(),
                graph: parse_graph(&fields)?,
                engine: fields.opt_str("engine")?.map(str::to_string),
            },
            "update" => {
                let u = u32_field(&fields, "u")?;
                let v = u32_field(&fields, "v")?;
                let update = match fields.str("op")? {
                    "insert" => EdgeUpdate::insert(u, v),
                    "remove" => EdgeUpdate::remove(u, v),
                    other => return Err(format!("unknown update op {other:?}")),
                };
                Request::Update {
                    session: fields.str("session")?.to_string(),
                    update,
                }
            }
            "close_session" => Request::CloseSession {
                session: fields.str("session")?.to_string(),
            },
            "status" => Request::Status,
            "ping" => Request::Ping {
                delay_ms: fields.opt_u64("delay_ms")?.unwrap_or(0),
            },
            "shutdown" => Request::Shutdown,
            other => return Err(format!("unknown request {other:?}")),
        };
        Ok(RequestFrame { id, req })
    }
}

/// Structured error category of an `error` frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request line did not parse or failed schema validation.
    Malformed,
    /// The bounded request queue was full; retry later.
    QueueFull,
    /// The daemon is draining for shutdown and accepts no new work.
    Draining,
    /// The named session does not exist on this connection.
    UnknownSession,
    /// The solver failed; the frame embeds the [`SolveError`] fields.
    Solve,
    /// The request's graph could not be built or read.
    Graph,
    /// A worker panicked; the daemon survived and the request did not.
    Internal,
}

impl ErrorCode {
    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Malformed => "malformed",
            ErrorCode::QueueFull => "queue_full",
            ErrorCode::Draining => "draining",
            ErrorCode::UnknownSession => "unknown_session",
            ErrorCode::Solve => "solve",
            ErrorCode::Graph => "graph",
            ErrorCode::Internal => "internal",
        }
    }

    fn from_str(s: &str) -> Result<ErrorCode, String> {
        Ok(match s {
            "malformed" => ErrorCode::Malformed,
            "queue_full" => ErrorCode::QueueFull,
            "draining" => ErrorCode::Draining,
            "unknown_session" => ErrorCode::UnknownSession,
            "solve" => ErrorCode::Solve,
            "graph" => ErrorCode::Graph,
            "internal" => ErrorCode::Internal,
            other => return Err(format!("unknown error code {other:?}")),
        })
    }
}

/// A `status` snapshot of the daemon.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DaemonStatus {
    /// Worker pool size.
    pub workers: u64,
    /// Request queue bound.
    pub queue_bound: u64,
    /// Requests queued right now (volatile; canonically zero).
    pub queued: u64,
    /// Requests executing right now (volatile; canonically zero).
    pub active: u64,
    /// Open sessions.
    pub sessions: u64,
    /// Terminal responses sent — completed requests, including
    /// error-refused ones.
    pub served: u64,
    /// Error frames emitted.
    pub errors: u64,
    /// Deepest the queue has been (volatile; canonically zero).
    pub max_queue_depth: u64,
    /// Logical request frames received.
    pub frames_in: u64,
    /// Logical response frames sent.
    pub frames_out: u64,
    /// Request bytes received (actual line bytes + newline).
    pub bytes_in: u64,
    /// Response bytes sent, at canonical cost (see module docs).
    pub bytes_out: u64,
    /// The daemon's default engine descriptor.
    pub engine: String,
    /// Whether a shutdown drain is in progress.
    pub draining: bool,
}

/// A daemon response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Terminal response to `solve`.
    Report {
        /// Nanoseconds the request waited in the queue (volatile).
        queue_ns: u64,
        /// The run report.
        line: RunReportLine,
    },
    /// Terminal response to `open_session`: the base solve's report.
    SessionOpened {
        /// The session name, echoed.
        session: String,
        /// Nanoseconds the request waited in the queue (volatile).
        queue_ns: u64,
        /// The base solve's report.
        line: RunReportLine,
    },
    /// Terminal response to `update`.
    Updated {
        /// The session name, echoed.
        session: String,
        /// Nanoseconds the request waited in the queue (volatile).
        queue_ns: u64,
        /// The update report.
        line: UpdateReportLine,
    },
    /// Terminal response to `close_session`.
    SessionClosed {
        /// The session name, echoed.
        session: String,
        /// Updates the session applied over its lifetime.
        updates: u64,
    },
    /// Terminal response to `status`.
    Status(DaemonStatus),
    /// Terminal response to `ping`.
    Pong,
    /// Streamed while a `progress: true` solve runs; never terminal.
    Progress {
        /// What the worker is doing (`"solve"`, `"open_session"`, …).
        phase: String,
        /// Milliseconds since execution started (volatile).
        elapsed_ms: u64,
    },
    /// Terminal response to any failed request.
    Error {
        /// The category.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
        /// The structured solver failure, when `code` is
        /// [`ErrorCode::Solve`].
        solve: Option<SolveError>,
    },
    /// Terminal response to `shutdown`, sent after the drain completes.
    ShuttingDown {
        /// Requests served over the daemon's lifetime.
        served: u64,
    },
}

impl Response {
    /// Extracts the run report from a `report` or `session_opened`
    /// response.
    ///
    /// # Errors
    ///
    /// The error frame's message, or a description of the unexpected
    /// response.
    pub fn into_report(self) -> Result<RunReportLine, String> {
        match self {
            Response::Report { line, .. } | Response::SessionOpened { line, .. } => Ok(line),
            Response::Error { code, message, .. } => Err(format!("{}: {message}", code.as_str())),
            other => Err(format!("expected a report response, got {other:?}")),
        }
    }

    /// Extracts the update report from an `updated` response.
    ///
    /// # Errors
    ///
    /// The error frame's message, or a description of the unexpected
    /// response.
    pub fn into_update(self) -> Result<UpdateReportLine, String> {
        match self {
            Response::Updated { line, .. } => Ok(line),
            Response::Error { code, message, .. } => Err(format!("{}: {message}", code.as_str())),
            other => Err(format!("expected an updated response, got {other:?}")),
        }
    }
}

/// A response line: the echoed request `id` plus the response.
#[derive(Debug, Clone, PartialEq)]
pub struct ResponseFrame {
    /// The request id this frame answers (empty when the request line was
    /// too malformed to carry one).
    pub id: String,
    /// The response itself.
    pub resp: Response,
}

impl ResponseFrame {
    /// Whether this frame completes its request (everything except
    /// `progress`).
    pub fn is_terminal(&self) -> bool {
        !matches!(self.resp, Response::Progress { .. })
    }

    /// Encodes the frame as its canonical single line (no newline).
    pub fn encode(&self) -> String {
        let mut w = ObjectWriter::new();
        w.string("id", &self.id);
        match &self.resp {
            Response::Report { queue_ns, line } => {
                w.string("resp", "report").u64("queue_ns", *queue_ns);
                line.write_fields(&mut w);
            }
            Response::SessionOpened {
                session,
                queue_ns,
                line,
            } => {
                w.string("resp", "session_opened")
                    .string("session", session)
                    .u64("queue_ns", *queue_ns);
                line.write_fields(&mut w);
            }
            Response::Updated {
                session,
                queue_ns,
                line,
            } => {
                w.string("resp", "updated")
                    .string("session", session)
                    .u64("queue_ns", *queue_ns);
                line.write_fields(&mut w);
            }
            Response::SessionClosed { session, updates } => {
                w.string("resp", "session_closed")
                    .string("session", session)
                    .u64("updates", *updates);
            }
            Response::Status(s) => {
                w.string("resp", "status")
                    .u64("workers", s.workers)
                    .u64("queue_bound", s.queue_bound)
                    .u64("queued", s.queued)
                    .u64("active", s.active)
                    .u64("sessions", s.sessions)
                    .u64("served", s.served)
                    .u64("errors", s.errors)
                    .u64("max_queue_depth", s.max_queue_depth)
                    .u64("frames_in", s.frames_in)
                    .u64("frames_out", s.frames_out)
                    .u64("bytes_in", s.bytes_in)
                    .u64("bytes_out", s.bytes_out)
                    .string("engine", &s.engine)
                    .bool("draining", s.draining);
            }
            Response::Pong => {
                w.string("resp", "pong");
            }
            Response::Progress { phase, elapsed_ms } => {
                w.string("resp", "progress")
                    .string("phase", phase)
                    .u64("elapsed_ms", *elapsed_ms);
            }
            Response::Error {
                code,
                message,
                solve,
            } => {
                w.string("resp", "error")
                    .string("code", code.as_str())
                    .string("message", message);
                if let Some(err) = solve {
                    write_solve_error_fields(&mut w, err);
                }
            }
            Response::ShuttingDown { served } => {
                w.string("resp", "shutting_down").u64("served", *served);
            }
        }
        w.finish()
    }

    /// Parses a response line.
    ///
    /// # Errors
    ///
    /// A description of the first syntax or schema problem.
    pub fn parse(line: &str) -> Result<ResponseFrame, String> {
        let fields = Fields::parse(line)?;
        let id = fields.str("id")?.to_string();
        let resp = match fields.str("resp")? {
            "report" => Response::Report {
                queue_ns: fields.u64("queue_ns")?,
                line: RunReportLine::from_fields(&fields)?,
            },
            "session_opened" => Response::SessionOpened {
                session: fields.str("session")?.to_string(),
                queue_ns: fields.u64("queue_ns")?,
                line: RunReportLine::from_fields(&fields)?,
            },
            "updated" => Response::Updated {
                session: fields.str("session")?.to_string(),
                queue_ns: fields.u64("queue_ns")?,
                line: UpdateReportLine::from_fields(&fields)?,
            },
            "session_closed" => Response::SessionClosed {
                session: fields.str("session")?.to_string(),
                updates: fields.u64("updates")?,
            },
            "status" => Response::Status(DaemonStatus {
                workers: fields.u64("workers")?,
                queue_bound: fields.u64("queue_bound")?,
                queued: fields.u64("queued")?,
                active: fields.u64("active")?,
                sessions: fields.u64("sessions")?,
                served: fields.u64("served")?,
                errors: fields.u64("errors")?,
                max_queue_depth: fields.u64("max_queue_depth")?,
                frames_in: fields.u64("frames_in")?,
                frames_out: fields.u64("frames_out")?,
                bytes_in: fields.u64("bytes_in")?,
                bytes_out: fields.u64("bytes_out")?,
                engine: fields.str("engine")?.to_string(),
                draining: fields.bool("draining")?,
            }),
            "pong" => Response::Pong,
            "progress" => Response::Progress {
                phase: fields.str("phase")?.to_string(),
                elapsed_ms: fields.u64("elapsed_ms")?,
            },
            "error" => Response::Error {
                code: ErrorCode::from_str(fields.str("code")?)?,
                message: fields.str("message")?.to_string(),
                solve: if fields.get("error").is_some() {
                    Some(solve_error_from_fields(&fields)?)
                } else {
                    None
                },
            },
            "shutting_down" => Response::ShuttingDown {
                served: fields.u64("served")?,
            },
            other => return Err(format!("unknown response {other:?}")),
        };
        Ok(ResponseFrame { id, resp })
    }

    /// The frame with every volatile field zeroed — the encoding both
    /// ends charge to the byte counters (see module docs).
    pub fn canonical(&self) -> ResponseFrame {
        let mut c = self.clone();
        match &mut c.resp {
            Response::Report { queue_ns, line } => {
                *queue_ns = 0;
                line.wall_ns = 0;
            }
            Response::SessionOpened { queue_ns, line, .. } => {
                *queue_ns = 0;
                line.wall_ns = 0;
            }
            Response::Updated { queue_ns, line, .. } => {
                *queue_ns = 0;
                line.wall_ns = 0;
            }
            Response::Progress { elapsed_ms, .. } => *elapsed_ms = 0,
            Response::Status(s) => {
                s.queued = 0;
                s.active = 0;
                s.max_queue_depth = 0;
            }
            Response::SessionClosed { .. }
            | Response::Pong
            | Response::Error { .. }
            | Response::ShuttingDown { .. } => {}
        }
        c
    }

    /// Canonical wire bytes of this frame: canonical encoding plus the
    /// newline delimiter.
    pub fn wire_cost(&self) -> u64 {
        self.canonical().encode().len() as u64 + 1
    }
}

fn write_graph(w: &mut ObjectWriter, graph: &GraphSource) {
    match graph {
        GraphSource::Inline { nodes, edges } => {
            let mut s = String::with_capacity(edges.len() * 6);
            for (i, (u, v)) in edges.iter().enumerate() {
                if i > 0 {
                    s.push(';');
                }
                use std::fmt::Write as _;
                let _ = write!(s, "{u} {v}");
            }
            w.u64("nodes", *nodes as u64).string("edges", &s);
        }
        GraphSource::Snapshot(path) => {
            w.string("snapshot", &path.display().to_string());
        }
    }
}

fn parse_graph(fields: &Fields) -> Result<GraphSource, String> {
    if let Some(path) = fields.opt_str("snapshot")? {
        return Ok(GraphSource::Snapshot(PathBuf::from(path)));
    }
    let nodes = usize::try_from(fields.u64("nodes")?)
        .map_err(|_| "field \"nodes\" out of range".to_string())?;
    let raw = fields.str("edges")?;
    let mut edges = Vec::new();
    if !raw.is_empty() {
        for pair in raw.split(';') {
            let mut it = pair.split_whitespace();
            let (Some(u), Some(v), None) = (it.next(), it.next(), it.next()) else {
                return Err(format!("bad edge token {pair:?}"));
            };
            let u = u
                .parse::<u32>()
                .map_err(|_| format!("bad endpoint {u:?}"))?;
            let v = v
                .parse::<u32>()
                .map_err(|_| format!("bad endpoint {v:?}"))?;
            edges.push((u, v));
        }
    }
    Ok(GraphSource::Inline { nodes, edges })
}

fn opt_bool(fields: &Fields, key: &str) -> Result<bool, String> {
    match fields.get(key) {
        None => Ok(false),
        Some(_) => fields.bool(key),
    }
}

fn u32_field(fields: &Fields, key: &str) -> Result<u32, String> {
    u32::try_from(fields.u64(key)?).map_err(|_| format!("field {key:?} out of u32 range"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use deco_core::SolveStats;
    use deco_graph::generators;

    fn sample_run_line() -> RunReportLine {
        RunReportLine {
            colors: vec![Some(3), None, Some(0)],
            rounds: 41,
            messages: 1234,
            engine: "serial".to_string(),
            wall_ns: 987_654,
            x_palette: 17,
            x_rounds: 9,
            cost_rounds: 32,
            stats: SolveStats {
                sweeps: 2,
                eq2_worst_ratio: 0.25,
                ..SolveStats::default()
            },
        }
    }

    #[test]
    fn requests_round_trip() {
        let requests = [
            RequestFrame {
                id: "a-1".to_string(),
                req: Request::Solve {
                    graph: GraphSource::Inline {
                        nodes: 5,
                        edges: vec![(1, 2), (0, 4)],
                    },
                    engine: Some("barrier(threads=2)".to_string()),
                    progress: true,
                },
            },
            RequestFrame {
                id: "a-2".to_string(),
                req: Request::Solve {
                    graph: GraphSource::Snapshot(PathBuf::from("/tmp/g.snap")),
                    engine: None,
                    progress: false,
                },
            },
            RequestFrame {
                id: "s".to_string(),
                req: Request::OpenSession {
                    session: "churn-0".to_string(),
                    graph: GraphSource::Inline {
                        nodes: 3,
                        edges: vec![],
                    },
                    engine: None,
                },
            },
            RequestFrame {
                id: "u".to_string(),
                req: Request::Update {
                    session: "churn-0".to_string(),
                    update: EdgeUpdate::insert(1u32, 2u32),
                },
            },
            RequestFrame {
                id: "c".to_string(),
                req: Request::CloseSession {
                    session: "churn-0".to_string(),
                },
            },
            RequestFrame {
                id: "q".to_string(),
                req: Request::Status,
            },
            RequestFrame {
                id: "p".to_string(),
                req: Request::Ping { delay_ms: 250 },
            },
            RequestFrame {
                id: "z".to_string(),
                req: Request::Shutdown,
            },
        ];
        for frame in requests {
            let line = frame.encode();
            let parsed = RequestFrame::parse(&line).unwrap();
            assert_eq!(parsed, frame, "{line}");
        }
    }

    #[test]
    fn responses_round_trip() {
        let responses = [
            Response::Report {
                queue_ns: 5_000,
                line: sample_run_line(),
            },
            Response::SessionOpened {
                session: "s1".to_string(),
                queue_ns: 0,
                line: sample_run_line(),
            },
            Response::Updated {
                session: "s1".to_string(),
                queue_ns: 77,
                line: UpdateReportLine {
                    update: EdgeUpdate::remove(4u32, 9u32),
                    recolored: 1,
                    palette_max: 6,
                    palette_bound: 9,
                    escalated: false,
                    messages: 4,
                    wall_ns: 1_000,
                },
            },
            Response::SessionClosed {
                session: "s1".to_string(),
                updates: 12,
            },
            Response::Status(DaemonStatus {
                workers: 4,
                queue_bound: 64,
                engine: "serial".to_string(),
                ..DaemonStatus::default()
            }),
            Response::Pong,
            Response::Progress {
                phase: "solve".to_string(),
                elapsed_ms: 1500,
            },
            Response::Error {
                code: ErrorCode::Malformed,
                message: "no \"req\" field".to_string(),
                solve: None,
            },
            Response::Error {
                code: ErrorCode::Solve,
                message: "solver failed".to_string(),
                solve: Some(SolveError::DepthExceeded { depth: 9, limit: 8 }),
            },
            Response::ShuttingDown { served: 42 },
        ];
        for resp in responses {
            let frame = ResponseFrame {
                id: "r-7".to_string(),
                resp,
            };
            let line = frame.encode();
            let parsed = ResponseFrame::parse(&line).unwrap();
            assert_eq!(parsed, frame, "{line}");
        }
    }

    #[test]
    fn canonical_cost_ignores_volatile_fields() {
        let mut a = ResponseFrame {
            id: "x".to_string(),
            resp: Response::Report {
                queue_ns: 1,
                line: sample_run_line(),
            },
        };
        let mut b = a.clone();
        if let (
            Response::Report {
                queue_ns: qa,
                line: la,
            },
            Response::Report {
                queue_ns: qb,
                line: lb,
            },
        ) = (&mut a.resp, &mut b.resp)
        {
            *qa = 7;
            la.wall_ns = 123;
            *qb = 123_456_789_012;
            lb.wall_ns = 999_999_999_999;
        }
        assert_ne!(a.encode().len(), b.encode().len());
        assert_eq!(a.wire_cost(), b.wire_cost());
    }

    #[test]
    fn graph_source_round_trips_a_real_graph() {
        let g = generators::random_regular(16, 4, 3);
        let src = GraphSource::from_graph(&g);
        let rebuilt = src.load().unwrap();
        assert_eq!(rebuilt.num_nodes(), g.num_nodes());
        assert_eq!(rebuilt.num_edges(), g.num_edges());
        for e in g.edges() {
            assert_eq!(rebuilt.endpoints(e), g.endpoints(e));
        }
    }

    #[test]
    fn malformed_requests_are_named_errors() {
        for (line, needle) in [
            ("[]", "expected"),
            ("{\"id\":\"x\"}", "missing field"),
            ("{\"id\":\"x\",\"req\":\"warp\"}", "unknown request"),
            (
                "{\"id\":\"x\",\"req\":\"solve\",\"nodes\":3,\"edges\":\"1 2;bad\"}",
                "bad edge token",
            ),
            (
                "{\"id\":\"x\",\"req\":\"update\",\"session\":\"s\",\"op\":\"swap\",\"u\":1,\"v\":2}",
                "unknown update op",
            ),
        ] {
            let err = RequestFrame::parse(line).unwrap_err();
            assert!(err.contains(needle), "line {line:?}: {err}");
        }
    }
}
