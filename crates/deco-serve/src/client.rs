//! Synchronous client for the serving protocol.
//!
//! One request in flight at a time: [`Client::request`] writes a frame,
//! then reads frames until the terminal response for that request
//! arrives, buffering any `progress` frames it passes (drain them with
//! [`Client::take_progress`]). The client mirrors the daemon's logical
//! frame accounting — requests at actual line cost, responses at
//! canonical cost — so a client's [`FrameStats`] agree with the daemon's
//! counters for the same traffic on every transport.

use crate::transport::{dial, Duplex, ServeAddr};
use crate::wire::{DaemonStatus, GraphSource, Request, RequestFrame, Response, ResponseFrame};
use deco_graph::EdgeUpdate;
use std::io::{self, BufRead, BufReader, Read, Write};

/// Logical frame and byte counters, mirroring the daemon's (the client's
/// `out` is the daemon's `in` and vice versa).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrameStats {
    /// Response frames received.
    pub frames_in: u64,
    /// Request frames sent.
    pub frames_out: u64,
    /// Response bytes, at canonical cost.
    pub bytes_in: u64,
    /// Request bytes, actual line bytes + newline.
    pub bytes_out: u64,
}

/// A connected client.
pub struct Client {
    reader: BufReader<Box<dyn Read + Send>>,
    writer: Box<dyn Write + Send>,
    next_id: u64,
    stats: FrameStats,
    progress: Vec<ResponseFrame>,
}

impl Client {
    /// Wraps an already-open connection (what
    /// [`ServerHandle::connect`](crate::server::ServerHandle::connect)
    /// returns for in-process daemons).
    pub fn from_duplex(duplex: Duplex) -> Client {
        Client {
            reader: BufReader::new(duplex.reader),
            writer: duplex.writer,
            next_id: 0,
            stats: FrameStats::default(),
            progress: Vec::new(),
        }
    }

    /// Dials a listening daemon.
    ///
    /// # Errors
    ///
    /// Connect failures (in-process daemons cannot be dialed — see
    /// [`dial`]).
    pub fn connect(addr: &ServeAddr) -> io::Result<Client> {
        dial(addr).map(Client::from_duplex)
    }

    /// The logical frame counters so far.
    pub fn stats(&self) -> FrameStats {
        self.stats
    }

    /// Drains the `progress` frames buffered since the last call.
    pub fn take_progress(&mut self) -> Vec<ResponseFrame> {
        std::mem::take(&mut self.progress)
    }

    /// Writes one raw request line without waiting for a response — the
    /// pipelining/fault-injection entry the protocol tests use. The line
    /// is counted as one logical frame whether or not it parses.
    ///
    /// # Errors
    ///
    /// Transport failures.
    pub fn send_line(&mut self, line: &str) -> io::Result<()> {
        self.stats.frames_out += 1;
        self.stats.bytes_out += line.len() as u64 + 1;
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        Ok(())
    }

    /// Reads the next response frame, whatever it is.
    ///
    /// # Errors
    ///
    /// Transport failures, EOF, and unparseable lines.
    pub fn recv(&mut self) -> io::Result<ResponseFrame> {
        self.read_frame()
    }

    /// Sends `req` and blocks until its terminal response.
    ///
    /// # Errors
    ///
    /// Transport failures, EOF before the terminal response, and protocol
    /// violations (an unparseable line, or a terminal frame for a
    /// different request id).
    pub fn request(&mut self, req: Request) -> io::Result<Response> {
        let id = format!("c{}", self.next_id);
        self.next_id += 1;
        let line = RequestFrame {
            id: id.clone(),
            req,
        }
        .encode();
        self.stats.frames_out += 1;
        self.stats.bytes_out += line.len() as u64 + 1;
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        loop {
            let frame = self.read_frame()?;
            if !frame.is_terminal() {
                self.progress.push(frame);
                continue;
            }
            if frame.id != id {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("terminal response for {:?}, expected {id:?}", frame.id),
                ));
            }
            return Ok(frame.resp);
        }
    }

    fn read_frame(&mut self) -> io::Result<ResponseFrame> {
        let mut buf = String::new();
        loop {
            buf.clear();
            if self.reader.read_line(&mut buf)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "daemon closed the connection",
                ));
            }
            let line = buf.trim_end_matches(['\n', '\r']);
            if line.is_empty() {
                continue;
            }
            let frame = ResponseFrame::parse(line)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            self.stats.frames_in += 1;
            self.stats.bytes_in += frame.wire_cost();
            return Ok(frame);
        }
    }

    /// Submits a one-shot solve.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn solve(
        &mut self,
        graph: GraphSource,
        engine: Option<&str>,
        progress: bool,
    ) -> io::Result<Response> {
        self.request(Request::Solve {
            graph,
            engine: engine.map(str::to_string),
            progress,
        })
    }

    /// Opens a named churn session.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn open_session(
        &mut self,
        session: &str,
        graph: GraphSource,
        engine: Option<&str>,
    ) -> io::Result<Response> {
        self.request(Request::OpenSession {
            session: session.to_string(),
            graph,
            engine: engine.map(str::to_string),
        })
    }

    /// Applies one update to an open session.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn update(&mut self, session: &str, update: EdgeUpdate) -> io::Result<Response> {
        self.request(Request::Update {
            session: session.to_string(),
            update,
        })
    }

    /// Closes a session.
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn close_session(&mut self, session: &str) -> io::Result<Response> {
        self.request(Request::CloseSession {
            session: session.to_string(),
        })
    }

    /// Fetches a daemon status snapshot.
    ///
    /// # Errors
    ///
    /// See [`Client::request`]; a non-`status` terminal response is
    /// `InvalidData`.
    pub fn status(&mut self) -> io::Result<DaemonStatus> {
        match self.request(Request::Status)? {
            Response::Status(s) => Ok(s),
            other => Err(unexpected("status", &other)),
        }
    }

    /// Liveness probe; `delay_ms > 0` makes the worker hold the request
    /// (the queue tests' load knob).
    ///
    /// # Errors
    ///
    /// See [`Client::request`].
    pub fn ping(&mut self, delay_ms: u64) -> io::Result<Response> {
        self.request(Request::Ping { delay_ms })
    }

    /// Asks the daemon to drain and exit; returns its lifetime served
    /// count.
    ///
    /// # Errors
    ///
    /// See [`Client::request`]; a non-`shutting_down` terminal response
    /// is `InvalidData`.
    pub fn shutdown(&mut self) -> io::Result<u64> {
        match self.request(Request::Shutdown)? {
            Response::ShuttingDown { served } => Ok(served),
            other => Err(unexpected("shutting_down", &other)),
        }
    }
}

fn unexpected(wanted: &str, got: &Response) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("expected a {wanted} response, got {got:?}"),
    )
}
