//! Daemon configuration from the environment.
//!
//! Follows the `DECO_ENGINE_*` discipline exactly: every variable has a
//! pure parser, malformed values are [`EngineEnvError`]s (variable name,
//! offending value, accepted forms) rather than silent fallbacks, and the
//! `deco-serve` binary turns them into a stderr line and exit code 2.
//!
//! | variable | values | meaning |
//! |---|---|---|
//! | `DECO_SERVE_ADDR` | `tcp:host:port`, `host:port`, `uds:/path`, `inproc` (default `tcp:127.0.0.1:7401`) | where the daemon listens |
//! | `DECO_SERVE_WORKERS` | unset/empty/`0` = auto, else a worker count | size of the solving worker pool |
//! | `DECO_SERVE_QUEUE` | unset/empty = 64, else a bound ≥ 1 | request queue capacity; excess requests get `queue_full` |
//! | `DECO_SERVE_PROGRESS_MS` | unset/empty = 1000, `0` = off, else milliseconds | period of streamed `progress` frames |
//!
//! The daemon's default engine comes from the `DECO_ENGINE_*` variables
//! through [`Runtime::from_env`]; per-request `engine` descriptors
//! override it.

use crate::transport::ServeAddr;
use deco_engine::config::EngineEnvError;
use deco_runtime::Runtime;
use std::time::Duration;

/// `DECO_SERVE_ADDR` — where the daemon listens.
pub const ENV_ADDR: &str = "DECO_SERVE_ADDR";
/// `DECO_SERVE_WORKERS` — worker pool size (0 = auto).
pub const ENV_WORKERS: &str = "DECO_SERVE_WORKERS";
/// `DECO_SERVE_QUEUE` — request queue bound.
pub const ENV_QUEUE: &str = "DECO_SERVE_QUEUE";
/// `DECO_SERVE_PROGRESS_MS` — progress frame period (0 = off).
pub const ENV_PROGRESS: &str = "DECO_SERVE_PROGRESS_MS";

/// Listen address when `DECO_SERVE_ADDR` is unset.
pub const DEFAULT_ADDR: &str = "tcp:127.0.0.1:7401";
/// Queue bound when `DECO_SERVE_QUEUE` is unset.
pub const DEFAULT_QUEUE: usize = 64;
/// Progress period when `DECO_SERVE_PROGRESS_MS` is unset.
pub const DEFAULT_PROGRESS_MS: u64 = 1_000;

/// Parses `DECO_SERVE_ADDR`.
///
/// # Errors
///
/// [`EngineEnvError`] naming the variable and the accepted forms.
pub fn parse_addr(raw: &str) -> Result<ServeAddr, EngineEnvError> {
    let raw = if raw.is_empty() { DEFAULT_ADDR } else { raw };
    ServeAddr::parse(raw).map_err(|_| EngineEnvError {
        var: ENV_ADDR,
        value: raw.to_string(),
        expected: "tcp:host:port, host:port, uds:/path, or inproc",
    })
}

/// Parses `DECO_SERVE_WORKERS` (`0`/empty = auto).
///
/// # Errors
///
/// [`EngineEnvError`] naming the variable and the accepted forms.
pub fn parse_workers(raw: &str) -> Result<usize, EngineEnvError> {
    if raw.is_empty() {
        return Ok(0);
    }
    raw.parse::<usize>().map_err(|_| EngineEnvError {
        var: ENV_WORKERS,
        value: raw.to_string(),
        expected: "a worker count (0 = auto)",
    })
}

/// Parses `DECO_SERVE_QUEUE` (empty = 64; must be ≥ 1).
///
/// # Errors
///
/// [`EngineEnvError`] naming the variable and the accepted forms.
pub fn parse_queue(raw: &str) -> Result<usize, EngineEnvError> {
    if raw.is_empty() {
        return Ok(DEFAULT_QUEUE);
    }
    match raw.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(EngineEnvError {
            var: ENV_QUEUE,
            value: raw.to_string(),
            expected: "a queue bound >= 1",
        }),
    }
}

/// Parses `DECO_SERVE_PROGRESS_MS` (empty = 1000; `0` = off).
///
/// # Errors
///
/// [`EngineEnvError`] naming the variable and the accepted forms.
pub fn parse_progress_ms(raw: &str) -> Result<u64, EngineEnvError> {
    if raw.is_empty() {
        return Ok(DEFAULT_PROGRESS_MS);
    }
    raw.parse::<u64>().map_err(|_| EngineEnvError {
        var: ENV_PROGRESS,
        value: raw.to_string(),
        expected: "a period in milliseconds (0 = no periodic progress)",
    })
}

/// Everything a [`Server`](crate::server::Server) needs to start.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Where to listen.
    pub addr: ServeAddr,
    /// Worker pool size (`0` = auto: available parallelism, capped at 8).
    pub workers: usize,
    /// Request queue bound (≥ 1).
    pub queue_bound: usize,
    /// Default runtime for requests without an `engine` descriptor.
    pub runtime: Runtime,
    /// Period of streamed `progress` frames (`ZERO` = off).
    pub progress_interval: Duration,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: ServeAddr::InProc,
            workers: 0,
            queue_bound: DEFAULT_QUEUE,
            runtime: Runtime::serial(),
            progress_interval: Duration::from_millis(DEFAULT_PROGRESS_MS),
        }
    }
}

impl ServeConfig {
    /// Reads the full configuration from the environment: the
    /// `DECO_SERVE_*` knobs above plus the engine default through
    /// [`Runtime::from_env`].
    ///
    /// # Errors
    ///
    /// The first malformed variable, as a structured [`EngineEnvError`].
    pub fn from_env() -> Result<ServeConfig, EngineEnvError> {
        let get = |var: &'static str| std::env::var(var).unwrap_or_default();
        Ok(ServeConfig {
            addr: parse_addr(&get(ENV_ADDR))?,
            workers: parse_workers(&get(ENV_WORKERS))?,
            queue_bound: parse_queue(&get(ENV_QUEUE))?,
            runtime: Runtime::from_env()?,
            progress_interval: Duration::from_millis(parse_progress_ms(&get(ENV_PROGRESS))?),
        })
    }

    /// The effective worker count: `workers`, or the auto rule when zero.
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2)
            .min(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parsers_accept_the_documented_forms() {
        assert_eq!(parse_addr("").unwrap().to_string(), DEFAULT_ADDR);
        assert_eq!(parse_addr("inproc").unwrap(), ServeAddr::InProc);
        assert_eq!(parse_workers("").unwrap(), 0);
        assert_eq!(parse_workers("3").unwrap(), 3);
        assert_eq!(parse_queue("").unwrap(), DEFAULT_QUEUE);
        assert_eq!(parse_queue("1").unwrap(), 1);
        assert_eq!(parse_progress_ms("").unwrap(), DEFAULT_PROGRESS_MS);
        assert_eq!(parse_progress_ms("0").unwrap(), 0);
    }

    #[test]
    fn malformed_values_name_the_variable() {
        let err = parse_addr("gopher:hole").unwrap_err();
        assert_eq!(err.var, ENV_ADDR);
        assert_eq!(err.value, "gopher:hole");
        let err = parse_workers("many").unwrap_err();
        assert_eq!(err.var, ENV_WORKERS);
        let err = parse_queue("0").unwrap_err();
        assert_eq!(err.var, ENV_QUEUE);
        assert_eq!(err.value, "0");
        let err = parse_progress_ms("fast").unwrap_err();
        assert_eq!(err.var, ENV_PROGRESS);
    }

    #[test]
    fn auto_worker_count_is_positive_and_bounded() {
        let cfg = ServeConfig::default();
        let n = cfg.effective_workers();
        assert!((1..=8).contains(&n), "auto workers {n} out of range");
        let pinned = ServeConfig {
            workers: 3,
            ..ServeConfig::default()
        };
        assert_eq!(pinned.effective_workers(), 3);
    }
}
