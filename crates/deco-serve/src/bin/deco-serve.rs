//! The `deco-serve` daemon binary, plus a `client` subcommand for
//! scripting against a running daemon (CI readiness polls and shutdown).
//!
//! ```text
//! deco-serve [--addr A] [--workers N] [--queue N]   # run the daemon
//! deco-serve client <addr> status                   # print a status line
//! deco-serve client <addr> ping [delay_ms]          # liveness probe
//! deco-serve client <addr> shutdown                 # drain and stop it
//! ```
//!
//! Configuration comes from the `DECO_SERVE_*` / `DECO_ENGINE_*`
//! environment (flags override); malformed values print the structured
//! error and exit 2, per the repo-wide contract.

use deco_serve::client::Client;
use deco_serve::config::{self, ServeConfig};
use deco_serve::server::Server;
use deco_serve::transport::ServeAddr;
use deco_serve::wire::Response;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: deco-serve [--addr A] [--workers N] [--queue N]\n       \
         deco-serve client <addr> status|ping [delay_ms]|shutdown"
    );
    ExitCode::from(2)
}

fn fail(msg: impl std::fmt::Display) -> ExitCode {
    eprintln!("deco-serve: {msg}");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let strs: Vec<&str> = args.iter().map(String::as_str).collect();
    match strs.split_first() {
        Some((&"client", rest)) => run_client(rest),
        Some((&"--help", _)) | Some((&"-h", _)) => usage(),
        _ => run_daemon(&strs),
    }
}

fn run_daemon(args: &[&str]) -> ExitCode {
    let mut cfg = match ServeConfig::from_env() {
        Ok(cfg) => cfg,
        Err(e) => return fail(e),
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let Some(value) = it.next() else {
            return usage();
        };
        let parsed = match *flag {
            "--addr" => config::parse_addr(value).map(|a| cfg.addr = a),
            "--workers" => config::parse_workers(value).map(|w| cfg.workers = w),
            "--queue" => config::parse_queue(value).map(|q| cfg.queue_bound = q),
            _ => return usage(),
        };
        if let Err(e) = parsed {
            return fail(format!("{flag} {}", e.expected));
        }
    }
    let handle = match Server::start(cfg.clone()) {
        Ok(h) => h,
        Err(e) => return fail(format!("cannot listen on {}: {e}", cfg.addr)),
    };
    eprintln!(
        "deco-serve listening on {} ({} workers, queue {}, engine {})",
        handle.addr(),
        cfg.effective_workers(),
        cfg.queue_bound,
        cfg.runtime.descriptor()
    );
    handle.join();
    eprintln!("deco-serve: drained and stopped");
    ExitCode::SUCCESS
}

fn run_client(args: &[&str]) -> ExitCode {
    let (addr, cmd, rest) = match args {
        [addr, cmd, rest @ ..] => (*addr, *cmd, rest),
        _ => return usage(),
    };
    let addr = match ServeAddr::parse(addr) {
        Ok(a) => a,
        Err(e) => return fail(e),
    };
    let mut client = match Client::connect(&addr) {
        Ok(c) => c,
        Err(e) => return fail(format!("cannot connect to {addr}: {e}")),
    };
    let outcome = match (cmd, rest) {
        ("status", []) => client.status().map(|s| {
            println!(
                "served={} errors={} queued={} active={} sessions={} engine={}",
                s.served, s.errors, s.queued, s.active, s.sessions, s.engine
            );
        }),
        ("ping", rest) => {
            let delay = match rest {
                [] => 0,
                [d] => match d.parse::<u64>() {
                    Ok(d) => d,
                    Err(_) => return usage(),
                },
                _ => return usage(),
            };
            client.ping(delay).and_then(|resp| match resp {
                Response::Pong => {
                    println!("pong");
                    Ok(())
                }
                other => Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("expected pong, got {other:?}"),
                )),
            })
        }
        ("shutdown", []) => client.shutdown().map(|served| {
            println!("shutting down after {served} requests");
        }),
        _ => return usage(),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => fail(e),
    }
}
