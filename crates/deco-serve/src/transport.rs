//! Serving transports: TCP, Unix-domain sockets, and an in-process pipe.
//!
//! The daemon listens and clients dial in — the same direction as the
//! framed shard transports in `deco-engine::shard::net`, and for the same
//! reason: the listener's address is the only thing a client ever needs
//! to know. All three transports carry the identical newline-delimited
//! frames; the in-process pipe exists so tests and the `serve-load`
//! experiment can drive a daemon with no socket (or port) at all, while
//! still crossing a real byte boundary.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::mpsc;
use std::time::Duration;

/// Where a daemon listens (or listened — [`ServeAddr`] is also the
/// resolved form handed back once an ephemeral port is bound).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeAddr {
    /// TCP, `host:port` (port `0` binds ephemeral).
    Tcp(String),
    /// Unix-domain socket at a filesystem path.
    #[cfg(unix)]
    Uds(PathBuf),
    /// In-process byte pipes; reachable only through
    /// [`ServerHandle::connect`](crate::server::ServerHandle::connect).
    InProc,
}

impl ServeAddr {
    /// Parses `tcp:host:port`, bare `host:port`, `uds:/path`, or
    /// `inproc`.
    ///
    /// # Errors
    ///
    /// A description of the accepted forms.
    pub fn parse(s: &str) -> Result<ServeAddr, String> {
        if s == "inproc" {
            return Ok(ServeAddr::InProc);
        }
        if let Some(path) = s.strip_prefix("uds:") {
            #[cfg(unix)]
            return Ok(ServeAddr::Uds(PathBuf::from(path)));
            #[cfg(not(unix))]
            return Err(format!("uds addresses are unix-only: {path:?}"));
        }
        let hostport = s.strip_prefix("tcp:").unwrap_or(s);
        if hostport
            .rsplit_once(':')
            .is_some_and(|(h, p)| !h.is_empty() && p.parse::<u16>().is_ok())
        {
            Ok(ServeAddr::Tcp(hostport.to_string()))
        } else {
            Err(format!(
                "expected tcp:host:port, host:port, uds:/path, or inproc, got {s:?}"
            ))
        }
    }
}

impl std::fmt::Display for ServeAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeAddr::Tcp(hp) => write!(f, "tcp:{hp}"),
            #[cfg(unix)]
            ServeAddr::Uds(p) => write!(f, "uds:{}", p.display()),
            ServeAddr::InProc => f.write_str("inproc"),
        }
    }
}

/// One client connection, as owned read/write halves.
pub struct Duplex {
    /// Bytes from the peer.
    pub reader: Box<dyn Read + Send>,
    /// Bytes to the peer.
    pub writer: Box<dyn Write + Send>,
}

impl Duplex {
    fn from_tcp(stream: TcpStream) -> io::Result<Duplex> {
        stream.set_nodelay(true)?;
        Ok(Duplex {
            reader: Box::new(stream.try_clone()?),
            writer: Box::new(stream),
        })
    }

    #[cfg(unix)]
    fn from_uds(stream: UnixStream) -> io::Result<Duplex> {
        Ok(Duplex {
            reader: Box::new(stream.try_clone()?),
            writer: Box::new(stream),
        })
    }
}

/// Dials a listening daemon. Retries briefly (the caller may have raced
/// the daemon's bind). In-process daemons cannot be dialed by address —
/// use [`ServerHandle::connect`](crate::server::ServerHandle::connect).
///
/// # Errors
///
/// The last connect failure after the retry window.
pub fn dial(addr: &ServeAddr) -> io::Result<Duplex> {
    match addr {
        ServeAddr::Tcp(hp) => Duplex::from_tcp(retry(|| TcpStream::connect(hp.as_str()))?),
        #[cfg(unix)]
        ServeAddr::Uds(path) => Duplex::from_uds(retry(|| UnixStream::connect(path))?),
        ServeAddr::InProc => Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "in-process daemons are dialed through ServerHandle::connect",
        )),
    }
}

fn retry<S>(mut connect: impl FnMut() -> io::Result<S>) -> io::Result<S> {
    let mut last = None;
    for _ in 0..40 {
        match connect() {
            Ok(s) => return Ok(s),
            Err(e) => {
                last = Some(e);
                std::thread::sleep(Duration::from_millis(25));
            }
        }
    }
    Err(last.unwrap_or_else(|| io::Error::other("connect never attempted")))
}

/// Hands new in-process connections to a listening daemon.
#[derive(Clone)]
pub struct InProcConnector {
    tx: mpsc::Sender<Duplex>,
}

impl InProcConnector {
    /// Opens a connection: two byte pipes crossed into a [`Duplex`] per
    /// side, the server side delivered to the daemon's acceptor.
    ///
    /// # Errors
    ///
    /// `BrokenPipe` when the daemon has stopped accepting.
    pub fn connect(&self) -> io::Result<Duplex> {
        let (c2s_w, c2s_r) = pipe();
        let (s2c_w, s2c_r) = pipe();
        let server_side = Duplex {
            reader: Box::new(c2s_r),
            writer: Box::new(s2c_w),
        };
        self.tx
            .send(server_side)
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "daemon stopped accepting"))?;
        Ok(Duplex {
            reader: Box::new(s2c_r),
            writer: Box::new(c2s_w),
        })
    }
}

/// The daemon's listening end, all transports unified behind a polling
/// accept.
pub(crate) enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Uds {
        listener: UnixListener,
        /// Held so the socket path is unlinked when the daemon stops.
        _guard: UnlinkGuard,
    },
    InProc(mpsc::Receiver<Duplex>),
}

impl Listener {
    /// Binds `addr`. Returns the listener, the *resolved* address
    /// (ephemeral TCP ports materialized), and — for in-process daemons —
    /// the connector clients use.
    pub(crate) fn bind(
        addr: &ServeAddr,
    ) -> io::Result<(Listener, ServeAddr, Option<InProcConnector>)> {
        match addr {
            ServeAddr::Tcp(hp) => {
                let listener = TcpListener::bind(hp.as_str())?;
                let resolved = ServeAddr::Tcp(listener.local_addr()?.to_string());
                listener.set_nonblocking(true)?;
                Ok((Listener::Tcp(listener), resolved, None))
            }
            #[cfg(unix)]
            ServeAddr::Uds(path) => {
                let _ = std::fs::remove_file(path);
                let listener = UnixListener::bind(path)?;
                listener.set_nonblocking(true)?;
                Ok((
                    Listener::Uds {
                        listener,
                        _guard: UnlinkGuard(path.clone()),
                    },
                    ServeAddr::Uds(path.clone()),
                    None,
                ))
            }
            ServeAddr::InProc => {
                let (tx, rx) = mpsc::channel();
                Ok((
                    Listener::InProc(rx),
                    ServeAddr::InProc,
                    Some(InProcConnector { tx }),
                ))
            }
        }
    }

    /// One nonblocking accept poll: `Some` on a new connection, `None`
    /// when nothing is waiting (including a hung-up in-process
    /// connector — the stop flag, not the listener, ends the acceptor).
    pub(crate) fn poll_accept(&self) -> io::Result<Option<Duplex>> {
        match self {
            Listener::Tcp(l) => match l.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(false)?;
                    Duplex::from_tcp(stream).map(Some)
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
            #[cfg(unix)]
            Listener::Uds { listener: l, .. } => match l.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(false)?;
                    Duplex::from_uds(stream).map(Some)
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
            Listener::InProc(rx) => match rx.try_recv() {
                Ok(d) => Ok(Some(d)),
                Err(_) => Ok(None),
            },
        }
    }
}

/// Removes a Unix socket path on drop, so failed starts and clean
/// shutdowns both leave the filesystem as they found it.
#[cfg(unix)]
pub(crate) struct UnlinkGuard(PathBuf);

#[cfg(unix)]
impl Drop for UnlinkGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// Sending half of an in-process byte pipe.
struct PipeWriter {
    tx: mpsc::Sender<Vec<u8>>,
}

impl Write for PipeWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.tx
            .send(buf.to_vec())
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "pipe peer gone"))?;
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Receiving half of an in-process byte pipe: blocking reads, `Ok(0)` on
/// hangup — exactly a socket's shape.
struct PipeReader {
    rx: mpsc::Receiver<Vec<u8>>,
    buf: Vec<u8>,
    pos: usize,
}

impl Read for PipeReader {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        if self.pos >= self.buf.len() {
            match self.rx.recv() {
                Ok(chunk) => {
                    self.buf = chunk;
                    self.pos = 0;
                }
                Err(_) => return Ok(0),
            }
        }
        let n = out.len().min(self.buf.len() - self.pos);
        out[..n].copy_from_slice(&self.buf[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

fn pipe() -> (PipeWriter, PipeReader) {
    let (tx, rx) = mpsc::channel();
    (
        PipeWriter { tx },
        PipeReader {
            rx,
            buf: Vec::new(),
            pos: 0,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    #[test]
    fn addr_parsing_covers_every_form() {
        assert_eq!(
            ServeAddr::parse("tcp:127.0.0.1:7401").unwrap(),
            ServeAddr::Tcp("127.0.0.1:7401".to_string())
        );
        assert_eq!(
            ServeAddr::parse("127.0.0.1:0").unwrap(),
            ServeAddr::Tcp("127.0.0.1:0".to_string())
        );
        #[cfg(unix)]
        assert_eq!(
            ServeAddr::parse("uds:/tmp/deco.sock").unwrap(),
            ServeAddr::Uds(PathBuf::from("/tmp/deco.sock"))
        );
        assert_eq!(ServeAddr::parse("inproc").unwrap(), ServeAddr::InProc);
        for bad in ["", "nonsense", "tcp:nohost", "host:notaport"] {
            assert!(ServeAddr::parse(bad).is_err(), "{bad:?} must not parse");
        }
        // Display round-trips.
        for addr in ["tcp:127.0.0.1:7401", "inproc"] {
            assert_eq!(ServeAddr::parse(addr).unwrap().to_string(), addr);
        }
    }

    #[test]
    fn in_process_pipes_carry_lines_and_signal_hangup() {
        let (mut w, r) = pipe();
        w.write_all(b"hello\nworld\n").unwrap();
        drop(w);
        let mut lines = BufReader::new(r).lines();
        assert_eq!(lines.next().unwrap().unwrap(), "hello");
        assert_eq!(lines.next().unwrap().unwrap(), "world");
        assert!(lines.next().is_none(), "hangup reads as EOF");
    }
}
