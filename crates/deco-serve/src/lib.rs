//! # deco-serve — coloring as a service
//!
//! A long-lived daemon serving the edge-coloring stack over a
//! newline-delimited line-JSON protocol: one-shot solves
//! ([`wire::Request::Solve`], inline edges or a `DECOSNAP` snapshot
//! path), churn sessions over `deco-core`'s incremental
//! [`Session`](deco_core::Session)
//! (`open_session`/`update`/`close_session`), liveness and introspection
//! (`ping`, `status`), and drained shutdown. Requests flow through a
//! bounded queue into a worker pool of [`Runtime`](deco_runtime::Runtime)
//! handles; responses are streamed JSONL frames embedding the stable
//! report codecs from `deco_core::jsonl`, so every line the daemon emits
//! is a round-trip-parseable artifact.
//!
//! Three transports carry identical frames: TCP, Unix-domain sockets, and
//! an in-process byte pipe for tests and the `serve-load` experiment.
//! Frame and byte accounting is *logical* (each frame counted once, at
//! canonical cost — see [`wire`]), so the numbers agree bit for bit
//! across all three.
//!
//! ## Quickstart
//!
//! ```
//! use deco_serve::config::ServeConfig;
//! use deco_serve::server::Server;
//! use deco_serve::wire::GraphSource;
//! use deco_graph::generators;
//!
//! let handle = Server::start(ServeConfig::default()).unwrap(); // in-process
//! let mut client = handle.connect().unwrap();
//!
//! let g = generators::random_regular(20, 4, 7);
//! let report = client
//!     .solve(GraphSource::from_graph(&g), None, false)
//!     .unwrap()
//!     .into_report()
//!     .unwrap();
//! assert_eq!(report.colors.len(), g.num_edges());
//!
//! client.shutdown().unwrap();
//! handle.join();
//! ```
//!
//! The `deco-serve` binary wraps [`Server`] behind the
//! `DECO_SERVE_*` environment knobs (see [`config`]) and ships a `client`
//! subcommand for scripting (`deco-serve client tcp:127.0.0.1:7401
//! status`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod config;
pub mod server;
pub mod transport;
pub mod wire;

pub use client::{Client, FrameStats};
pub use config::ServeConfig;
pub use server::{Server, ServerHandle};
pub use transport::ServeAddr;
pub use wire::{DaemonStatus, ErrorCode, GraphSource, Request, Response};
