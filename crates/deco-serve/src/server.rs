//! The daemon: acceptor, bounded request queue, worker pool, sessions,
//! progress monitor, and drain-on-shutdown.
//!
//! ## Request lifecycle
//!
//! A detached reader thread per connection parses request lines.
//! `status` is answered inline (it must work while every worker is busy);
//! `shutdown` runs the drain; everything else is enqueued on the bounded
//! queue, where a pool of workers — each executing requests through a
//! [`Runtime`] — picks it up. The worker sends the terminal response
//! frame (report, update report, or structured error) over the
//! connection's shared writer; a `progress: true` solve additionally gets
//! an immediate `progress` frame when execution starts plus periodic ones
//! from the monitor thread while it runs.
//!
//! Nothing a client does can crash or wedge the daemon: malformed lines
//! become `malformed` error frames, a full queue answers `queue_full`
//! without blocking the reader, worker panics are caught and answered
//! with `internal`, and a client that disconnects mid-solve merely makes
//! the worker's response write fail — the worker moves on. Sessions are
//! owned by the connection that opened them: other connections get
//! `unknown_session`, and a disconnect closes the connection's sessions.
//!
//! ## Drain semantics
//!
//! `shutdown` flips the daemon into draining mode: new work is refused
//! with `draining`, already-queued and in-flight requests run to
//! completion, and only when the queue is empty and every worker idle
//! does the daemon send `shutting_down` and stop its threads.

use crate::client::Client;
use crate::config::ServeConfig;
use crate::transport::{dial, InProcConnector, Listener, ServeAddr};
use crate::wire::{
    DaemonStatus, ErrorCode, GraphSource, Request, RequestFrame, Response, ResponseFrame,
};
use deco_core::jsonl::{RunReportLine, UpdateReportLine};
use deco_core::solver::{solve_two_delta_minus_one, SolverConfig};
use deco_core::{Session, SessionError};
use deco_graph::{EdgeUpdate, Graph};
use deco_runtime::{Engine, Runtime};
use deco_trace::json::Fields;
use std::collections::{HashMap, VecDeque};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Locks through poison: a panicking worker must not take the daemon's
/// shared state down with it (the panic itself is already caught and
/// answered; the data under these locks stays consistent because every
/// critical section completes its writes before running fallible code).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// The write half of one client connection, shared by the reader thread,
/// the workers, and the progress monitor.
struct ConnOut {
    id: u64,
    w: Mutex<Box<dyn Write + Send>>,
}

type Conn = Arc<ConnOut>;

/// One queued request.
struct Job {
    conn: Conn,
    id: String,
    enqueued: Instant,
    work: Work,
}

/// The queueable requests (status and shutdown never queue).
enum Work {
    Solve {
        graph: GraphSource,
        engine: Option<String>,
        progress: bool,
    },
    OpenSession {
        session: String,
        graph: GraphSource,
        engine: Option<String>,
    },
    Update {
        session: String,
        update: EdgeUpdate,
    },
    CloseSession {
        session: String,
    },
    Ping {
        delay_ms: u64,
    },
}

/// Queue state guarded by one mutex so "queue empty and no worker busy"
/// is a single observable condition for the drain.
struct QueueState {
    jobs: VecDeque<Job>,
    active: usize,
}

/// An open session: the connection that owns it, the session behind its
/// own mutex (updates to one session serialize; distinct sessions run in
/// parallel), and its update counter.
#[derive(Clone)]
struct SessionHandle {
    owner: u64,
    session: Arc<Mutex<Session>>,
    updates: Arc<AtomicU64>,
}

/// A solve currently executing, for the progress monitor.
struct ActiveSolve {
    conn: Conn,
    id: String,
    phase: &'static str,
    started: Instant,
    progress: bool,
}

struct Shared {
    runtime: Runtime,
    workers: usize,
    queue_bound: usize,
    progress_interval: Duration,
    queue: Mutex<QueueState>,
    work_ready: Condvar,
    idle: Condvar,
    stop: AtomicBool,
    draining: AtomicBool,
    sessions: Mutex<HashMap<String, SessionHandle>>,
    actives: Mutex<Vec<ActiveSolve>>,
    conn_counter: AtomicU64,
    served: AtomicU64,
    errors: AtomicU64,
    frames_in: AtomicU64,
    frames_out: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    max_queue_depth: AtomicU64,
}

impl Shared {
    fn status(&self) -> DaemonStatus {
        let q = lock(&self.queue);
        let sessions = lock(&self.sessions).len() as u64;
        DaemonStatus {
            workers: self.workers as u64,
            queue_bound: self.queue_bound as u64,
            queued: q.jobs.len() as u64,
            active: q.active as u64,
            sessions,
            served: self.served.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed),
            frames_in: self.frames_in.load(Ordering::Relaxed),
            frames_out: self.frames_out.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            bytes_out: self.bytes_out.load(Ordering::Relaxed),
            engine: self.runtime.descriptor(),
            draining: self.draining.load(Ordering::Relaxed),
        }
    }
}

/// Sends one response frame: counts it at canonical cost (see
/// [`crate::wire`]), then writes the real encoding. A failed write means
/// the client is gone; the daemon does not care.
fn send(shared: &Shared, conn: &ConnOut, frame: &ResponseFrame) {
    shared.frames_out.fetch_add(1, Ordering::Relaxed);
    shared
        .bytes_out
        .fetch_add(frame.wire_cost(), Ordering::Relaxed);
    if matches!(frame.resp, Response::Error { .. }) {
        shared.errors.fetch_add(1, Ordering::Relaxed);
    }
    // Counters are bumped before the write so that by the time a client
    // holds a terminal response, a status snapshot already reflects it.
    if frame.is_terminal() {
        shared.served.fetch_add(1, Ordering::Relaxed);
    }
    let line = frame.encode();
    let mut w = lock(&conn.w);
    let _ = w
        .write_all(line.as_bytes())
        .and_then(|()| w.write_all(b"\n"))
        .and_then(|()| w.flush());
}

fn send_error(shared: &Shared, conn: &ConnOut, id: &str, code: ErrorCode, message: String) {
    send(
        shared,
        conn,
        &ResponseFrame {
            id: id.to_string(),
            resp: Response::Error {
                code,
                message,
                solve: None,
            },
        },
    );
}

/// The daemon. [`Server::start`] binds, spawns the thread complement, and
/// returns a [`ServerHandle`].
pub struct Server;

/// A running daemon: its resolved address, a way to connect, and its
/// thread handles.
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: ServeAddr,
    connector: Option<InProcConnector>,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `config.addr` and starts the acceptor, the worker pool, and
    /// (when enabled) the progress monitor.
    ///
    /// # Errors
    ///
    /// Bind and thread-spawn failures.
    pub fn start(config: ServeConfig) -> io::Result<ServerHandle> {
        let workers = config.effective_workers();
        let (listener, addr, connector) = Listener::bind(&config.addr)?;
        let shared = Arc::new(Shared {
            runtime: config.runtime,
            workers,
            queue_bound: config.queue_bound,
            progress_interval: config.progress_interval,
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                active: 0,
            }),
            work_ready: Condvar::new(),
            idle: Condvar::new(),
            stop: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            sessions: Mutex::new(HashMap::new()),
            actives: Mutex::new(Vec::new()),
            conn_counter: AtomicU64::new(0),
            served: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            frames_in: AtomicU64::new(0),
            frames_out: AtomicU64::new(0),
            bytes_in: AtomicU64::new(0),
            bytes_out: AtomicU64::new(0),
            max_queue_depth: AtomicU64::new(0),
        });
        let mut threads = Vec::with_capacity(workers + 2);
        for i in 0..workers {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("deco-serve-worker-{i}"))
                    .spawn(move || worker(&shared))?,
            );
        }
        {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("deco-serve-accept".to_string())
                    .spawn(move || acceptor(&shared, &listener))?,
            );
        }
        if !shared.progress_interval.is_zero() {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("deco-serve-progress".to_string())
                    .spawn(move || monitor(&shared))?,
            );
        }
        Ok(ServerHandle {
            shared,
            addr,
            connector,
            threads,
        })
    }
}

impl ServerHandle {
    /// The resolved listen address (ephemeral TCP ports materialized).
    pub fn addr(&self) -> &ServeAddr {
        &self.addr
    }

    /// Opens a client connection to this daemon — through the in-process
    /// connector for [`ServeAddr::InProc`], by dialing otherwise.
    ///
    /// # Errors
    ///
    /// Connect failures.
    pub fn connect(&self) -> io::Result<Client> {
        let duplex = match &self.connector {
            Some(c) => c.connect()?,
            None => dial(&self.addr)?,
        };
        Ok(Client::from_duplex(duplex))
    }

    /// A status snapshot straight off the shared state (no wire round
    /// trip) — what the load harness samples for queue depth.
    pub fn status(&self) -> DaemonStatus {
        self.shared.status()
    }

    /// Whether the daemon has fully stopped (a drained shutdown
    /// completed or [`ServerHandle::stop`] ran).
    pub fn stopped(&self) -> bool {
        self.shared.stop.load(Ordering::Relaxed)
    }

    /// Waits until a client-initiated `shutdown` (or [`Self::stop`])
    /// stops the daemon — the `deco-serve` binary's whole foreground.
    pub fn join(mut self) {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    /// Hard stop for tests: refuses new work, abandons queued jobs
    /// (in-flight requests still finish), and joins the threads.
    pub fn stop(mut self) {
        self.shared.draining.store(true, Ordering::Relaxed);
        self.shared.stop.store(true, Ordering::Relaxed);
        self.shared.work_ready.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shared.draining.store(true, Ordering::Relaxed);
        self.shared.stop.store(true, Ordering::Relaxed);
        self.shared.work_ready.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

fn acceptor(shared: &Arc<Shared>, listener: &Listener) {
    while !shared.stop.load(Ordering::Relaxed) {
        match listener.poll_accept() {
            Ok(Some(duplex)) => {
                let conn_id = shared.conn_counter.fetch_add(1, Ordering::Relaxed);
                let conn = Arc::new(ConnOut {
                    id: conn_id,
                    w: Mutex::new(duplex.writer),
                });
                let shared = Arc::clone(shared);
                let spawned = std::thread::Builder::new()
                    .name(format!("deco-serve-conn-{conn_id}"))
                    .spawn(move || serve_conn(&shared, &conn, duplex.reader));
                if spawned.is_err() {
                    // Out of threads: the connection is dropped; the
                    // client sees EOF and can retry.
                    continue;
                }
            }
            Ok(None) | Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

fn monitor(shared: &Arc<Shared>) {
    let interval = shared.progress_interval;
    let mut last = Instant::now();
    while !shared.stop.load(Ordering::Relaxed) {
        std::thread::sleep(Duration::from_millis(25));
        if last.elapsed() < interval {
            continue;
        }
        last = Instant::now();
        let ticks: Vec<(Conn, String, &'static str, Instant)> = lock(&shared.actives)
            .iter()
            .filter(|a| a.progress)
            .map(|a| (Arc::clone(&a.conn), a.id.clone(), a.phase, a.started))
            .collect();
        for (conn, id, phase, started) in ticks {
            send(
                shared,
                &conn,
                &ResponseFrame {
                    id,
                    resp: Response::Progress {
                        phase: phase.to_string(),
                        elapsed_ms: started.elapsed().as_millis() as u64,
                    },
                },
            );
        }
    }
}

/// Reader loop for one connection. Runs on a detached thread; exits on
/// EOF or a read error, then closes the connection's sessions.
fn serve_conn(shared: &Arc<Shared>, conn: &Conn, reader: Box<dyn Read + Send>) {
    let mut reader = BufReader::new(reader);
    let mut buf = String::new();
    loop {
        buf.clear();
        match reader.read_line(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let line = buf.trim_end_matches(['\n', '\r']);
        if line.is_empty() {
            continue;
        }
        shared.frames_in.fetch_add(1, Ordering::Relaxed);
        shared
            .bytes_in
            .fetch_add(line.len() as u64 + 1, Ordering::Relaxed);
        let frame = match RequestFrame::parse(line) {
            Ok(f) => f,
            Err(msg) => {
                send_error(
                    shared,
                    conn,
                    &best_effort_id(line),
                    ErrorCode::Malformed,
                    msg,
                );
                continue;
            }
        };
        match frame.req {
            Request::Status => {
                send(
                    shared,
                    conn,
                    &ResponseFrame {
                        id: frame.id,
                        resp: Response::Status(shared.status()),
                    },
                );
            }
            Request::Shutdown => {
                drain_and_stop(shared, conn, &frame.id);
                break;
            }
            Request::Solve {
                graph,
                engine,
                progress,
            } => enqueue(
                shared,
                conn,
                frame.id,
                Work::Solve {
                    graph,
                    engine,
                    progress,
                },
            ),
            Request::OpenSession {
                session,
                graph,
                engine,
            } => enqueue(
                shared,
                conn,
                frame.id,
                Work::OpenSession {
                    session,
                    graph,
                    engine,
                },
            ),
            Request::Update { session, update } => {
                enqueue(shared, conn, frame.id, Work::Update { session, update });
            }
            Request::CloseSession { session } => {
                enqueue(shared, conn, frame.id, Work::CloseSession { session });
            }
            Request::Ping { delay_ms } => {
                enqueue(shared, conn, frame.id, Work::Ping { delay_ms });
            }
        }
    }
    // Sessions die with the connection that owns them.
    lock(&shared.sessions).retain(|_, h| h.owner != conn.id);
}

/// Pulls an `id` out of a line that failed full parsing, so even a
/// malformed request gets an attributable error frame: first the strict
/// parser (the line may be schema-invalid but syntactically fine), then
/// a plain-text scan for `"id":"…"` (the line may be syntactically
/// broken further along). Escaped ids are only recovered by the strict
/// path; the scan stops at the first quote.
fn best_effort_id(line: &str) -> String {
    if let Ok(fields) = Fields::parse(line) {
        if let Ok(id) = fields.str("id") {
            return id.to_string();
        }
    }
    line.split_once("\"id\":\"")
        .and_then(|(_, rest)| rest.split_once('"'))
        .map(|(id, _)| id.to_string())
        .filter(|id| !id.contains('\\'))
        .unwrap_or_default()
}

fn enqueue(shared: &Arc<Shared>, conn: &Conn, id: String, work: Work) {
    let mut q = lock(&shared.queue);
    if shared.draining.load(Ordering::Relaxed) {
        drop(q);
        send_error(
            shared,
            conn,
            &id,
            ErrorCode::Draining,
            "daemon is draining for shutdown".to_string(),
        );
        return;
    }
    if q.jobs.len() >= shared.queue_bound {
        drop(q);
        send_error(
            shared,
            conn,
            &id,
            ErrorCode::QueueFull,
            format!("request queue is full ({} queued)", shared.queue_bound),
        );
        return;
    }
    q.jobs.push_back(Job {
        conn: Arc::clone(conn),
        id,
        enqueued: Instant::now(),
        work,
    });
    shared
        .max_queue_depth
        .fetch_max(q.jobs.len() as u64, Ordering::Relaxed);
    drop(q);
    shared.work_ready.notify_one();
}

/// The drain: refuse new work, wait for queue-empty-and-all-idle, answer
/// `shutting_down`, stop the threads.
fn drain_and_stop(shared: &Arc<Shared>, conn: &Conn, id: &str) {
    shared.draining.store(true, Ordering::Relaxed);
    let mut q = lock(&shared.queue);
    while !(q.jobs.is_empty() && q.active == 0) {
        q = shared.idle.wait(q).unwrap_or_else(|p| p.into_inner());
    }
    drop(q);
    send(
        shared,
        conn,
        &ResponseFrame {
            id: id.to_string(),
            resp: Response::ShuttingDown {
                served: shared.served.load(Ordering::Relaxed),
            },
        },
    );
    shared.stop.store(true, Ordering::Relaxed);
    shared.work_ready.notify_all();
}

fn worker(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut q = lock(&shared.queue);
            loop {
                if shared.stop.load(Ordering::Relaxed) {
                    return;
                }
                if let Some(job) = q.jobs.pop_front() {
                    q.active += 1;
                    break job;
                }
                q = shared.work_ready.wait(q).unwrap_or_else(|p| p.into_inner());
            }
        };
        let queue_ns = job.enqueued.elapsed().as_nanos() as u64;
        let outcome = catch_unwind(AssertUnwindSafe(|| run_work(shared, &job, queue_ns)));
        if outcome.is_err() {
            // The request died; the daemon did not.
            send_error(
                shared,
                &job.conn,
                &job.id,
                ErrorCode::Internal,
                "worker panicked executing the request".to_string(),
            );
        }
        let mut q = lock(&shared.queue);
        q.active -= 1;
        if q.jobs.is_empty() && q.active == 0 {
            shared.idle.notify_all();
        }
    }
}

/// Registers a running solve with the progress monitor for the guard's
/// lifetime.
struct ActiveGuard<'a> {
    shared: &'a Shared,
    conn_id: u64,
    id: String,
}

impl<'a> ActiveGuard<'a> {
    fn register(
        shared: &'a Shared,
        job: &Job,
        phase: &'static str,
        progress: bool,
    ) -> ActiveGuard<'a> {
        let started = Instant::now();
        lock(&shared.actives).push(ActiveSolve {
            conn: Arc::clone(&job.conn),
            id: job.id.clone(),
            phase,
            started,
            progress,
        });
        if progress {
            // One deterministic progress frame at execution start; the
            // monitor adds periodic ones while the solve runs.
            send(
                shared,
                &job.conn,
                &ResponseFrame {
                    id: job.id.clone(),
                    resp: Response::Progress {
                        phase: phase.to_string(),
                        elapsed_ms: 0,
                    },
                },
            );
        }
        ActiveGuard {
            shared,
            conn_id: job.conn.id,
            id: job.id.clone(),
        }
    }
}

impl Drop for ActiveGuard<'_> {
    fn drop(&mut self) {
        lock(&self.shared.actives).retain(|a| !(a.conn.id == self.conn_id && a.id == self.id));
    }
}

fn resolve_runtime(shared: &Shared, engine: &Option<String>) -> Result<Runtime, String> {
    match engine {
        None => Ok(shared.runtime),
        Some(desc) => desc
            .parse::<Engine>()
            .map(Runtime::new)
            .map_err(|e| format!("bad engine descriptor {desc:?}: {e}")),
    }
}

fn node_ids(g: &Graph) -> Vec<u64> {
    (1..=g.num_nodes() as u64).collect()
}

fn run_work(shared: &Shared, job: &Job, queue_ns: u64) {
    match &job.work {
        Work::Solve {
            graph,
            engine,
            progress,
        } => {
            let rt = match resolve_runtime(shared, engine) {
                Ok(rt) => rt,
                Err(msg) => {
                    return send_error(shared, &job.conn, &job.id, ErrorCode::Malformed, msg)
                }
            };
            let g = match graph.load() {
                Ok(g) => g,
                Err(msg) => return send_error(shared, &job.conn, &job.id, ErrorCode::Graph, msg),
            };
            let _active = ActiveGuard::register(shared, job, "solve", *progress);
            match solve_two_delta_minus_one(&g, &node_ids(&g), SolverConfig::default(), &rt) {
                Ok(report) => send(
                    shared,
                    &job.conn,
                    &ResponseFrame {
                        id: job.id.clone(),
                        resp: Response::Report {
                            queue_ns,
                            line: RunReportLine::from_report(&report),
                        },
                    },
                ),
                Err(e) => send(
                    shared,
                    &job.conn,
                    &ResponseFrame {
                        id: job.id.clone(),
                        resp: Response::Error {
                            code: ErrorCode::Solve,
                            message: e.to_string(),
                            solve: Some(e),
                        },
                    },
                ),
            }
        }
        Work::OpenSession {
            session,
            graph,
            engine,
        } => {
            let rt = match resolve_runtime(shared, engine) {
                Ok(rt) => rt,
                Err(msg) => {
                    return send_error(shared, &job.conn, &job.id, ErrorCode::Malformed, msg)
                }
            };
            let g = match graph.load() {
                Ok(g) => g,
                Err(msg) => return send_error(shared, &job.conn, &job.id, ErrorCode::Graph, msg),
            };
            if lock(&shared.sessions).contains_key(session) {
                return send_error(
                    shared,
                    &job.conn,
                    &job.id,
                    ErrorCode::Malformed,
                    format!("session {session:?} is already open"),
                );
            }
            let _active = ActiveGuard::register(shared, job, "open_session", false);
            match Session::open(&g, &node_ids(&g), SolverConfig::default(), &rt) {
                Ok(mut s) => {
                    let line = RunReportLine::from_report(&s.report());
                    // A racing open of the same name may have landed
                    // while we solved; first insert wins.
                    let mut sessions = lock(&shared.sessions);
                    if sessions.contains_key(session) {
                        drop(sessions);
                        return send_error(
                            shared,
                            &job.conn,
                            &job.id,
                            ErrorCode::Malformed,
                            format!("session {session:?} is already open"),
                        );
                    }
                    sessions.insert(
                        session.clone(),
                        SessionHandle {
                            owner: job.conn.id,
                            session: Arc::new(Mutex::new(s)),
                            updates: Arc::new(AtomicU64::new(0)),
                        },
                    );
                    drop(sessions);
                    send(
                        shared,
                        &job.conn,
                        &ResponseFrame {
                            id: job.id.clone(),
                            resp: Response::SessionOpened {
                                session: session.clone(),
                                queue_ns,
                                line,
                            },
                        },
                    );
                }
                Err(e) => send(
                    shared,
                    &job.conn,
                    &ResponseFrame {
                        id: job.id.clone(),
                        resp: Response::Error {
                            code: ErrorCode::Solve,
                            message: e.to_string(),
                            solve: Some(e),
                        },
                    },
                ),
            }
        }
        Work::Update { session, update } => {
            let Some(handle) = owned_session(shared, session, job.conn.id) else {
                return send_error(
                    shared,
                    &job.conn,
                    &job.id,
                    ErrorCode::UnknownSession,
                    format!("no session {session:?} on this connection"),
                );
            };
            let result = lock(&handle.session).apply(*update);
            match result {
                Ok(report) => {
                    handle.updates.fetch_add(1, Ordering::Relaxed);
                    send(
                        shared,
                        &job.conn,
                        &ResponseFrame {
                            id: job.id.clone(),
                            resp: Response::Updated {
                                session: session.clone(),
                                queue_ns,
                                line: UpdateReportLine::from_report(&report),
                            },
                        },
                    );
                }
                Err(SessionError::Solve(e)) => send(
                    shared,
                    &job.conn,
                    &ResponseFrame {
                        id: job.id.clone(),
                        resp: Response::Error {
                            code: ErrorCode::Solve,
                            message: e.to_string(),
                            solve: Some(e),
                        },
                    },
                ),
                Err(SessionError::Mutate(e)) => {
                    send_error(shared, &job.conn, &job.id, ErrorCode::Graph, e.to_string())
                }
            }
        }
        Work::CloseSession { session } => {
            let mut sessions = lock(&shared.sessions);
            let owned = sessions
                .get(session)
                .is_some_and(|h| h.owner == job.conn.id);
            if !owned {
                drop(sessions);
                return send_error(
                    shared,
                    &job.conn,
                    &job.id,
                    ErrorCode::UnknownSession,
                    format!("no session {session:?} on this connection"),
                );
            }
            let handle = sessions.remove(session).expect("checked above");
            drop(sessions);
            send(
                shared,
                &job.conn,
                &ResponseFrame {
                    id: job.id.clone(),
                    resp: Response::SessionClosed {
                        session: session.clone(),
                        updates: handle.updates.load(Ordering::Relaxed),
                    },
                },
            );
        }
        Work::Ping { delay_ms } => {
            if *delay_ms > 0 {
                std::thread::sleep(Duration::from_millis(*delay_ms));
            }
            send(
                shared,
                &job.conn,
                &ResponseFrame {
                    id: job.id.clone(),
                    resp: Response::Pong,
                },
            );
        }
    }
}

fn owned_session(shared: &Shared, name: &str, conn_id: u64) -> Option<SessionHandle> {
    lock(&shared.sessions)
        .get(name)
        .filter(|h| h.owner == conn_id)
        .cloned()
}
