//! Integration suite for the serving layer: the end-to-end acceptance
//! run (concurrent clients bit-identical to direct `Runtime` runs), the
//! daemon's failure surface, drain semantics, and the cross-transport
//! accounting agreement.

use deco_core::jsonl::{RunReportLine, UpdateReportLine};
use deco_core::solver::{solve_two_delta_minus_one, SolverConfig};
use deco_core::Session;
use deco_graph::{generators, EdgeUpdate, Graph};
use deco_runtime::Runtime;
use deco_serve::client::Client;
use deco_serve::config::ServeConfig;
use deco_serve::server::{Server, ServerHandle};
use deco_serve::transport::ServeAddr;
use deco_serve::wire::{DaemonStatus, ErrorCode, GraphSource, Request, RequestFrame, Response};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

fn start(config: ServeConfig) -> ServerHandle {
    Server::start(config).expect("daemon starts")
}

fn inproc() -> ServeConfig {
    ServeConfig::default()
}

fn seq_ids(g: &Graph) -> Vec<u64> {
    (1..=g.num_nodes() as u64).collect()
}

fn direct_run_line(g: &Graph) -> RunReportLine {
    let report =
        solve_two_delta_minus_one(g, &seq_ids(g), SolverConfig::default(), &Runtime::serial())
            .expect("direct solve succeeds");
    RunReportLine::from_report(&report)
}

/// Zeroes the one nondeterministic field so lines compare bit-identically.
fn canon_run(mut line: RunReportLine) -> RunReportLine {
    line.wall_ns = 0;
    line
}

fn canon_update(mut line: UpdateReportLine) -> UpdateReportLine {
    line.wall_ns = 0;
    line
}

/// A small churn trace that is valid on any graph with at least one
/// edge: remove the first edge, re-insert it, remove it again.
fn churn_trace(g: &Graph) -> Vec<EdgeUpdate> {
    let [u, v] = g.endpoints(deco_graph::EdgeId::from(0usize));
    vec![
        EdgeUpdate::remove(u, v),
        EdgeUpdate::insert(u, v),
        EdgeUpdate::remove(u, v),
    ]
}

fn direct_session_lines(g: &Graph) -> (RunReportLine, Vec<UpdateReportLine>) {
    let mut s = Session::open(g, &seq_ids(g), SolverConfig::default(), &Runtime::serial())
        .expect("direct session opens");
    let base = RunReportLine::from_report(&s.report());
    let updates = churn_trace(g)
        .into_iter()
        .map(|u| UpdateReportLine::from_report(&s.apply(u).expect("direct update succeeds")))
        .collect();
    (base, updates)
}

fn tmp_path(tag: &str, ext: &str) -> std::path::PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "deco-serve-test-{tag}-{}-{}.{ext}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

// ---------------------------------------------------------------- E2E --

/// The acceptance run: one daemon, 8 concurrent clients — evens one-shot
/// solves, odds full churn sessions — every report bit-identical in
/// colors/rounds/messages to the same workload run directly through
/// `Runtime`.
#[test]
fn eight_concurrent_clients_match_direct_runs() {
    let handle = start(ServeConfig {
        workers: 4,
        ..inproc()
    });
    std::thread::scope(|scope| {
        for i in 0..8usize {
            let handle = &handle;
            scope.spawn(move || {
                let g = generators::random_regular(16 + 2 * i, 4, 40 + i as u64);
                let mut client = handle.connect().expect("client connects");
                if i % 2 == 0 {
                    let served = client
                        .solve(GraphSource::from_graph(&g), None, false)
                        .expect("solve request completes")
                        .into_report()
                        .expect("solve succeeds");
                    assert_eq!(
                        canon_run(served),
                        canon_run(direct_run_line(&g)),
                        "client {i}"
                    );
                } else {
                    let name = format!("churn-{i}");
                    let (direct_base, direct_updates) = direct_session_lines(&g);
                    let base = client
                        .open_session(&name, GraphSource::from_graph(&g), None)
                        .expect("open_session completes")
                        .into_report()
                        .expect("session opens");
                    assert_eq!(canon_run(base), canon_run(direct_base), "client {i} base");
                    for (k, update) in churn_trace(&g).into_iter().enumerate() {
                        let served = client
                            .update(&name, update)
                            .expect("update completes")
                            .into_update()
                            .expect("update succeeds");
                        assert_eq!(
                            canon_update(served),
                            canon_update(direct_updates[k].clone()),
                            "client {i} update {k}"
                        );
                    }
                    match client.close_session(&name).expect("close completes") {
                        Response::SessionClosed { updates, .. } => assert_eq!(updates, 3),
                        other => panic!("expected session_closed, got {other:?}"),
                    }
                }
            });
        }
    });
    let status = handle.status();
    assert_eq!(status.sessions, 0, "all sessions closed");
    // 4 solves + 4 * (open + 3 updates + close) = 24 worker requests.
    assert_eq!(status.served, 24);
    assert_eq!(status.errors, 0);
    handle.stop();
}

// ---------------------------------------------------- failure surface --

#[test]
fn malformed_frames_get_structured_errors_and_the_daemon_survives() {
    let handle = start(inproc());
    let mut client = handle.connect().unwrap();

    let cases: Vec<(String, ErrorCode, &str)> = vec![
        // Not JSON at all: no id to echo.
        ("garbage".to_string(), ErrorCode::Malformed, ""),
        // Valid JSON, missing the request discriminator.
        ("{\"id\":\"x1\"}".to_string(), ErrorCode::Malformed, "x1"),
        // Nested JSON is rejected by the flat-object parser.
        (
            "{\"id\":\"x2\",\"req\":\"solve\",\"nodes\":{\"n\":3}}".to_string(),
            ErrorCode::Malformed,
            "x2",
        ),
        // Unknown request verb.
        (
            "{\"id\":\"x3\",\"req\":\"teleport\"}".to_string(),
            ErrorCode::Malformed,
            "x3",
        ),
        // Parseable request, endpoint outside the node range.
        (
            RequestFrame {
                id: "x4".to_string(),
                req: Request::Solve {
                    graph: GraphSource::Inline {
                        nodes: 2,
                        edges: vec![(0, 5)],
                    },
                    engine: None,
                    progress: false,
                },
            }
            .encode(),
            ErrorCode::Graph,
            "x4",
        ),
        // Unreadable snapshot path.
        (
            RequestFrame {
                id: "x5".to_string(),
                req: Request::Solve {
                    graph: GraphSource::Snapshot(tmp_path("missing", "snap")),
                    engine: None,
                    progress: false,
                },
            }
            .encode(),
            ErrorCode::Graph,
            "x5",
        ),
        // Bad engine descriptor.
        (
            RequestFrame {
                id: "x6".to_string(),
                req: Request::Solve {
                    graph: GraphSource::Inline {
                        nodes: 2,
                        edges: vec![(0, 1)],
                    },
                    engine: Some("warp(drive=9)".to_string()),
                    progress: false,
                },
            }
            .encode(),
            ErrorCode::Malformed,
            "x6",
        ),
    ];
    for (line, want_code, want_id) in cases {
        client.send_line(&line).unwrap();
        let frame = client.recv().unwrap();
        assert_eq!(frame.id, want_id, "line {line}");
        match frame.resp {
            Response::Error { code, message, .. } => {
                assert_eq!(code, want_code, "line {line}: {message}");
                assert!(!message.is_empty());
            }
            other => panic!("line {line}: expected an error frame, got {other:?}"),
        }
    }

    // Updates against a session that was never opened.
    match client
        .update("nope", EdgeUpdate::insert(0u32, 1u32))
        .unwrap()
    {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::UnknownSession),
        other => panic!("expected unknown_session, got {other:?}"),
    }

    // After all of that the daemon still serves.
    assert!(matches!(client.ping(0).unwrap(), Response::Pong));
    let g = generators::random_regular(16, 4, 1);
    let line = client
        .solve(GraphSource::from_graph(&g), None, false)
        .unwrap()
        .into_report()
        .unwrap();
    assert_eq!(canon_run(line), canon_run(direct_run_line(&g)));
    handle.stop();
}

#[test]
fn disconnect_mid_request_does_not_wedge_the_worker() {
    let handle = start(ServeConfig {
        workers: 1,
        ..inproc()
    });
    // Park the only worker on a slow request, then vanish.
    let mut doomed = handle.connect().unwrap();
    doomed
        .send_line(
            &RequestFrame {
                id: "slow".to_string(),
                req: Request::Ping { delay_ms: 300 },
            }
            .encode(),
        )
        .unwrap();
    drop(doomed);

    // The worker's response write fails into the void; the worker must
    // come back and serve the next client.
    let mut client = handle.connect().unwrap();
    let start = Instant::now();
    assert!(matches!(client.ping(0).unwrap(), Response::Pong));
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "worker wedged after client disconnect"
    );
    let g = generators::random_regular(16, 4, 2);
    let line = client
        .solve(GraphSource::from_graph(&g), None, false)
        .unwrap()
        .into_report()
        .unwrap();
    assert_eq!(canon_run(line), canon_run(direct_run_line(&g)));
    handle.stop();
}

#[test]
fn sessions_are_isolated_and_die_with_their_connection() {
    let handle = start(ServeConfig {
        workers: 2,
        ..inproc()
    });
    let g1 = generators::random_regular(16, 4, 5);
    let g2 = generators::random_regular(20, 4, 6);
    let mut a = handle.connect().unwrap();
    let mut b = handle.connect().unwrap();

    a.open_session("s", GraphSource::from_graph(&g1), None)
        .unwrap()
        .into_report()
        .unwrap();

    // Session names are daemon-global: a second open is refused…
    match b
        .open_session("s", GraphSource::from_graph(&g2), None)
        .unwrap()
    {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Malformed),
        other => panic!("expected an error, got {other:?}"),
    }
    // …and access is connection-local: B cannot touch A's session.
    let [u, v] = g1.endpoints(deco_graph::EdgeId::from(0usize));
    match b.update("s", EdgeUpdate::remove(u, v)).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::UnknownSession),
        other => panic!("expected unknown_session, got {other:?}"),
    }
    match b.close_session("s").unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::UnknownSession),
        other => panic!("expected unknown_session, got {other:?}"),
    }

    // Interleaved updates on two sessions stay independent: both match
    // their direct single-session traces.
    b.open_session("t", GraphSource::from_graph(&g2), None)
        .unwrap()
        .into_report()
        .unwrap();
    let (_, direct_a) = direct_session_lines(&g1);
    let (_, direct_b) = direct_session_lines(&g2);
    let trace_a = churn_trace(&g1);
    let trace_b = churn_trace(&g2);
    for k in 0..trace_a.len() {
        let got_a = a.update("s", trace_a[k]).unwrap().into_update().unwrap();
        let got_b = b.update("t", trace_b[k]).unwrap().into_update().unwrap();
        assert_eq!(canon_update(got_a), canon_update(direct_a[k].clone()));
        assert_eq!(canon_update(got_b), canon_update(direct_b[k].clone()));
    }
    a.close_session("s").unwrap();

    // A dropped connection closes its sessions, freeing the name.
    drop(b);
    let mut c = handle.connect().unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match c
            .open_session("t", GraphSource::from_graph(&g1), None)
            .unwrap()
        {
            Response::SessionOpened { .. } => break,
            Response::Error {
                code: ErrorCode::Malformed,
                ..
            } => {
                assert!(
                    Instant::now() < deadline,
                    "session of a dead connection never cleaned up"
                );
                std::thread::sleep(Duration::from_millis(10));
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    handle.stop();
}

#[test]
fn queue_overflow_is_refused_not_blocked() {
    let handle = start(ServeConfig {
        workers: 1,
        queue_bound: 2,
        ..inproc()
    });
    let mut client = handle.connect().unwrap();
    // Pipeline five slow pings at a one-worker, two-slot daemon: at most
    // one executing + two queued can survive; at least two must be
    // refused — immediately, by the reader, while the worker sleeps.
    for k in 0..5 {
        client
            .send_line(
                &RequestFrame {
                    id: format!("p{k}"),
                    req: Request::Ping { delay_ms: 250 },
                }
                .encode(),
            )
            .unwrap();
    }
    let mut pongs = 0;
    let mut refused = 0;
    for _ in 0..5 {
        match client.recv().unwrap().resp {
            Response::Pong => pongs += 1,
            Response::Error { code, .. } => {
                assert_eq!(code, ErrorCode::QueueFull);
                refused += 1;
            }
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert_eq!(pongs + refused, 5);
    assert!((2..=3).contains(&pongs), "pongs = {pongs}");
    assert!(refused >= 2, "refused = {refused}");
    assert!(handle.status().max_queue_depth <= 2);
    handle.stop();
}

// ------------------------------------------------------------- drain --

#[test]
fn shutdown_drains_in_flight_requests_before_stopping() {
    let handle = start(ServeConfig {
        workers: 2,
        ..inproc()
    });
    let mut client = handle.connect().unwrap();
    client
        .send_line(
            &RequestFrame {
                id: "slow".to_string(),
                req: Request::Ping { delay_ms: 300 },
            }
            .encode(),
        )
        .unwrap();
    client
        .send_line(
            &RequestFrame {
                id: "bye".to_string(),
                req: Request::Shutdown,
            }
            .encode(),
        )
        .unwrap();
    // The in-flight ping completes (and its pong is on the wire) before
    // the daemon acknowledges the shutdown.
    let first = client.recv().unwrap();
    assert_eq!(first.id, "slow");
    assert!(matches!(first.resp, Response::Pong), "{first:?}");
    let second = client.recv().unwrap();
    assert_eq!(second.id, "bye");
    match second.resp {
        Response::ShuttingDown { served } => assert!(served >= 1),
        other => panic!("expected shutting_down, got {other:?}"),
    }
    handle.join();
}

#[test]
fn requests_after_shutdown_are_refused_as_draining() {
    // Two connections: one parks the only worker and shuts down; the
    // other tries to submit work while the drain is in progress.
    let handle = start(ServeConfig {
        workers: 1,
        ..inproc()
    });
    let mut closer = handle.connect().unwrap();
    let mut late = handle.connect().unwrap();
    closer
        .send_line(
            &RequestFrame {
                id: "slow".to_string(),
                req: Request::Ping { delay_ms: 400 },
            }
            .encode(),
        )
        .unwrap();
    closer
        .send_line(
            &RequestFrame {
                id: "bye".to_string(),
                req: Request::Shutdown,
            }
            .encode(),
        )
        .unwrap();
    // Give the drain a moment to latch, then submit late work.
    std::thread::sleep(Duration::from_millis(100));
    match late.ping(0).unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Draining),
        // The drain may already have finished and closed the pipe — that
        // surfaces as an io error, which Client::request reports; both
        // outcomes mean "no new work after shutdown".
        other => panic!("expected a draining error, got {other:?}"),
    }
    assert!(matches!(closer.recv().unwrap().resp, Response::Pong));
    assert!(matches!(
        closer.recv().unwrap().resp,
        Response::ShuttingDown { .. }
    ));
    handle.join();
}

// ----------------------------------------- cross-transport agreement --

/// One deterministic mixed workload, returning the client's counters and
/// the daemon's status as the client observed it.
fn accounting_workload(client: &mut Client, g: &Graph) -> (deco_serve::FrameStats, DaemonStatus) {
    client
        .solve(GraphSource::from_graph(g), None, false)
        .unwrap()
        .into_report()
        .unwrap();
    client
        .open_session("acct", GraphSource::from_graph(g), None)
        .unwrap()
        .into_report()
        .unwrap();
    for update in churn_trace(g) {
        client
            .update("acct", update)
            .unwrap()
            .into_update()
            .unwrap();
    }
    client.close_session("acct").unwrap();
    client.ping(0).unwrap();
    // One malformed line so error frames are part of the agreement too.
    client.send_line("not json").unwrap();
    match client.recv().unwrap().resp {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Malformed),
        other => panic!("expected malformed, got {other:?}"),
    }
    let before = client.stats();
    let status = client.status().unwrap();
    let after = client.stats();
    // Server-side counters agree with this client's view of the same
    // traffic: everything the client sent (including the status request)
    // was counted in, everything the client had received before the
    // status round-trip was counted out.
    assert_eq!(status.frames_in, after.frames_out);
    assert_eq!(status.bytes_in, after.bytes_out);
    assert_eq!(status.frames_out, before.frames_in);
    assert_eq!(status.bytes_out, before.bytes_in);
    (after, status)
}

/// Zeroes the live-load fields that legitimately vary run to run.
fn canon_status(mut s: DaemonStatus) -> DaemonStatus {
    s.queued = 0;
    s.active = 0;
    s.max_queue_depth = 0;
    s
}

#[test]
fn frame_and_byte_accounting_agree_across_transports() {
    let g = generators::random_regular(18, 4, 11);
    let mut observed: Vec<(String, deco_serve::FrameStats, DaemonStatus)> = Vec::new();

    // In-process pipes.
    let handle = start(inproc());
    let mut client = handle.connect().unwrap();
    let (stats, status) = accounting_workload(&mut client, &g);
    observed.push(("inproc".to_string(), stats, canon_status(status)));
    drop(client);
    handle.stop();

    // TCP on an ephemeral loopback port.
    let handle = start(ServeConfig {
        addr: ServeAddr::Tcp("127.0.0.1:0".to_string()),
        ..inproc()
    });
    let mut client = handle.connect().unwrap();
    let (stats, status) = accounting_workload(&mut client, &g);
    observed.push(("tcp".to_string(), stats, canon_status(status)));
    drop(client);
    handle.stop();

    // Unix-domain socket.
    #[cfg(unix)]
    {
        let path = tmp_path("acct", "sock");
        let handle = start(ServeConfig {
            addr: ServeAddr::Uds(path.clone()),
            ..inproc()
        });
        let mut client = handle.connect().unwrap();
        let (stats, status) = accounting_workload(&mut client, &g);
        observed.push(("uds".to_string(), stats, canon_status(status)));
        drop(client);
        handle.stop();
        assert!(!path.exists(), "socket path unlinked on stop");
    }

    let (_, first_stats, first_status) = &observed[0];
    for (name, stats, status) in &observed[1..] {
        assert_eq!(stats, first_stats, "client counters diverge on {name}");
        assert_eq!(status, first_status, "daemon counters diverge on {name}");
    }
}

// ------------------------------------------------------------- modes --

#[test]
fn per_request_engine_override_is_attributed_and_identical() {
    let handle = start(inproc());
    let mut client = handle.connect().unwrap();
    let g = generators::random_regular(20, 4, 13);
    let line = client
        .solve(
            GraphSource::from_graph(&g),
            Some("barrier(threads=2)"),
            false,
        )
        .unwrap()
        .into_report()
        .unwrap();
    assert_eq!(line.engine, "barrier(threads=2)");
    // Engines are observable-identical: same colors, rounds, messages as
    // the serial direct run — only the attribution differs.
    let direct = direct_run_line(&g);
    let mut canon = canon_run(line);
    canon.engine = "serial".to_string();
    assert_eq!(canon, canon_run(direct));
    handle.stop();
}

#[test]
fn snapshot_solves_match_inline_solves() {
    let g = generators::random_regular(22, 4, 17);
    let path = tmp_path("solve", "snap");
    deco_graph::io::write_snapshot_file(&g, &path).unwrap();
    let handle = start(inproc());
    let mut client = handle.connect().unwrap();
    let from_snapshot = client
        .solve(GraphSource::Snapshot(path.clone()), None, false)
        .unwrap()
        .into_report()
        .unwrap();
    let from_inline = client
        .solve(GraphSource::from_graph(&g), None, false)
        .unwrap()
        .into_report()
        .unwrap();
    assert_eq!(canon_run(from_snapshot), canon_run(from_inline.clone()));
    assert_eq!(canon_run(from_inline), canon_run(direct_run_line(&g)));
    let _ = std::fs::remove_file(&path);
    handle.stop();
}

#[test]
fn progress_frames_stream_while_a_solve_runs() {
    let handle = start(ServeConfig {
        progress_interval: Duration::from_millis(50),
        ..inproc()
    });
    let mut client = handle.connect().unwrap();
    let g = generators::random_regular(24, 4, 19);
    let line = client
        .solve(GraphSource::from_graph(&g), None, true)
        .unwrap()
        .into_report()
        .unwrap();
    assert_eq!(canon_run(line), canon_run(direct_run_line(&g)));
    let progress = client.take_progress();
    assert!(
        !progress.is_empty(),
        "a progress-requesting solve streams at least the initial frame"
    );
    for frame in &progress {
        match &frame.resp {
            Response::Progress { phase, .. } => assert_eq!(phase, "solve"),
            other => panic!("expected progress, got {other:?}"),
        }
    }
    handle.stop();
}
