//! Port-numbered synchronous networks (the LOCAL model, §2.2 of the paper).
//!
//! A [`Network`] wraps a communication graph plus a unique-identifier
//! assignment from `{1, …, n^O(1)}`. Nodes know `n`, `Δ`, and their own ID;
//! they communicate with neighbors through numbered ports. All of this is
//! exactly the knowledge the LOCAL model grants.

use deco_graph::hashing::DetHashSet;
use deco_graph::{Adjacent, Graph, NodeId};
use rand::prelude::*;
use rand::rngs::StdRng;

/// How unique IDs are assigned to nodes, for adversarial testing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdAssignment {
    /// Node `v` gets ID `v + 1` (the friendly default).
    Sequential,
    /// Node `v` gets ID `n − v` (reversed; breaks algorithms that assume
    /// id order correlates with construction order).
    Reversed,
    /// A seeded random permutation of `{1, …, n}`.
    Shuffled(u64),
    /// Seeded random *sparse* distinct IDs in `{1, …, n²}` — exercises the
    /// `n^{O(1)}` ID space the model allows.
    SparseRandom(u64),
}

/// A LOCAL-model network: graph + ID assignment.
#[derive(Debug, Clone)]
pub struct Network<'g> {
    graph: &'g Graph,
    ids: Vec<u64>,
    // Cached global knowledge (ctx() is on the per-node per-round hot path).
    max_degree: usize,
    max_id: u64,
}

impl<'g> Network<'g> {
    /// Builds a network over `graph` with the given ID assignment.
    pub fn new(graph: &'g Graph, assignment: IdAssignment) -> Network<'g> {
        let n = graph.num_nodes();
        let ids = match assignment {
            IdAssignment::Sequential => (1..=n as u64).collect(),
            IdAssignment::Reversed => (1..=n as u64).rev().collect(),
            IdAssignment::Shuffled(seed) => {
                let mut ids: Vec<u64> = (1..=n as u64).collect();
                ids.shuffle(&mut StdRng::seed_from_u64(seed));
                ids
            }
            IdAssignment::SparseRandom(seed) => {
                // Deterministic-hasher set. The IDs are pushed in RNG draw
                // order, so the pinned sequence below is a function of the
                // seed with any hasher; the fixed-key hasher is defensive —
                // it keeps this platform-stable even if someone later
                // iterates the set or snapshots it.
                let mut rng = StdRng::seed_from_u64(seed);
                let bound = (n as u64).max(2).pow(2);
                let mut set: DetHashSet<u64> = DetHashSet::default();
                let mut ids = Vec::with_capacity(n);
                while ids.len() < n {
                    let candidate = rng.gen_range(1..=bound);
                    if set.insert(candidate) {
                        ids.push(candidate);
                    }
                }
                ids
            }
        };
        Network::with_cached(graph, ids)
    }

    /// Builds a network with explicit IDs.
    ///
    /// # Panics
    ///
    /// Panics if `ids` has the wrong length, contains zero, or has
    /// duplicates.
    pub fn with_ids(graph: &'g Graph, ids: Vec<u64>) -> Network<'g> {
        assert_eq!(ids.len(), graph.num_nodes(), "one ID per node required");
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert!(
            sorted.first().copied().unwrap_or(1) >= 1,
            "IDs must be >= 1"
        );
        assert!(
            sorted.windows(2).all(|w| w[0] != w[1]),
            "IDs must be distinct"
        );
        Network::with_cached(graph, ids)
    }

    fn with_cached(graph: &'g Graph, ids: Vec<u64>) -> Network<'g> {
        let max_degree = graph.max_degree();
        let max_id = ids.iter().copied().max().unwrap_or(1);
        Network {
            graph,
            ids,
            max_degree,
            max_id,
        }
    }

    /// The underlying communication graph.
    #[inline]
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// The unique ID of node `v`.
    #[inline]
    pub fn id(&self, v: NodeId) -> u64 {
        self.ids[v.index()]
    }

    /// All IDs, indexed by node.
    #[inline]
    pub fn ids(&self) -> &[u64] {
        &self.ids
    }

    /// The largest ID in use (an upper bound every node may know, standing
    /// in for the public bound `n^{O(1)}`).
    pub fn max_id(&self) -> u64 {
        self.max_id
    }

    /// The knowledge context handed to node `v`'s program.
    pub fn ctx(&self, v: NodeId) -> NodeCtx<'_> {
        NodeCtx {
            node: v,
            id: self.id(v),
            n: self.graph.num_nodes(),
            max_degree: self.max_degree,
            id_bound: self.max_id,
            ports: self.graph.adjacent(v),
        }
    }
}

/// What a node knows at the start of a LOCAL computation: its ID, the global
/// parameters `n` and `Δ`, an upper bound on IDs, and its ports.
///
/// Note the ports expose only *local* connectivity — `ports[i].neighbor` is
/// used by the runner for delivery, while well-behaved programs should treat
/// port indices as opaque and learn about neighbors through messages.
#[derive(Debug, Clone, Copy)]
pub struct NodeCtx<'a> {
    /// The node this context belongs to (dense simulator index).
    pub node: NodeId,
    /// The node's unique ID in `{1, …, id_bound}`.
    pub id: u64,
    /// Number of nodes in the network (globally known in LOCAL).
    pub n: usize,
    /// Maximum degree Δ of the network (globally known in LOCAL).
    pub max_degree: usize,
    /// Public upper bound on node IDs (`n^{O(1)}`).
    pub id_bound: u64,
    /// This node's ports: `ports[i]` connects to a neighbor via an edge.
    pub ports: &'a [Adjacent],
}

impl NodeCtx<'_> {
    /// Degree of this node.
    #[inline]
    pub fn degree(&self) -> usize {
        self.ports.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deco_graph::generators;

    #[test]
    fn sequential_ids() {
        let g = generators::path(4);
        let net = Network::new(&g, IdAssignment::Sequential);
        assert_eq!(net.ids(), &[1, 2, 3, 4]);
        assert_eq!(net.max_id(), 4);
    }

    #[test]
    fn reversed_ids() {
        let g = generators::path(3);
        let net = Network::new(&g, IdAssignment::Reversed);
        assert_eq!(net.ids(), &[3, 2, 1]);
    }

    #[test]
    fn shuffled_ids_are_a_permutation() {
        let g = generators::cycle(10);
        let net = Network::new(&g, IdAssignment::Shuffled(5));
        let mut ids = net.ids().to_vec();
        ids.sort_unstable();
        assert_eq!(ids, (1..=10).collect::<Vec<u64>>());
    }

    #[test]
    fn sparse_ids_are_distinct_and_bounded() {
        let g = generators::cycle(20);
        let net = Network::new(&g, IdAssignment::SparseRandom(9));
        let mut ids = net.ids().to_vec();
        ids.sort_unstable();
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
        assert!(*ids.last().unwrap() <= 400);
        assert!(ids[0] >= 1);
    }

    #[test]
    fn sparse_ids_are_pinned_for_fixed_seed() {
        // Regression test for platform-stable ID generation: the sparse
        // assignment must be a pure function of the seed (deterministic
        // hasher + deterministic RNG). If this changes, every scenario in
        // the matrix silently shifts — bump deliberately, never by accident.
        let g = generators::cycle(8);
        let net = Network::new(&g, IdAssignment::SparseRandom(42));
        assert_eq!(net.ids(), &[53, 21, 63, 45, 51, 38, 9, 39]);
    }

    #[test]
    fn ctx_exposes_model_knowledge() {
        let g = generators::star(3);
        let net = Network::new(&g, IdAssignment::Sequential);
        let ctx = net.ctx(NodeId(0));
        assert_eq!(ctx.degree(), 3);
        assert_eq!(ctx.n, 4);
        assert_eq!(ctx.max_degree, 3);
        assert_eq!(ctx.id, 1);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn with_ids_rejects_duplicates() {
        let g = generators::path(3);
        let _ = Network::with_ids(&g, vec![1, 1, 2]);
    }
}
