//! The synchronous round executor for message-passing node programs.
//!
//! A [`NodeProgram`] is the per-node state machine of a LOCAL algorithm. In
//! every round the runner (1) asks each non-halted node for its outgoing
//! messages, (2) delivers them, (3) lets each node process its inbox. A node
//! halts by returning `Some(output)` from [`NodeProgram::output`]; the
//! execution stops when all nodes have halted.
//!
//! The runner enforces the model: a node's state can only change through
//! `receive`, and all communication flows through ports. Locality tests
//! (`locality.rs`) exploit this to verify that outputs depend only on
//! radius-T balls.

use crate::network::{Network, NodeCtx};
use deco_graph::NodeId;

/// Per-node state machine of a synchronous message-passing algorithm.
pub trait NodeProgram {
    /// Message payload exchanged with neighbors.
    ///
    /// `Default` supplies the vacant-slot filler for the dense message
    /// arenas every engine parks messages in ([`crate::arena::PortArena`]);
    /// message types here are plain data (integers, small tuples, enum
    /// variants), so the bound costs nothing.
    type Msg: Clone + Default;
    /// Final output of the node.
    type Output: Clone;

    /// Messages to send this round: `out[i]` goes through port `i`.
    /// Return an empty vector to send nothing anywhere.
    fn send(&mut self, ctx: &NodeCtx<'_>) -> Vec<Option<Self::Msg>>;

    /// Processes the messages received this round: `inbox[i]` arrived
    /// through port `i` (i.e. from the neighbor behind port `i`).
    fn receive(&mut self, ctx: &NodeCtx<'_>, inbox: &[Option<Self::Msg>]);

    /// The node's output once it has halted; `None` while still running.
    fn output(&self, ctx: &NodeCtx<'_>) -> Option<Self::Output>;
}

/// Factory creating one [`NodeProgram`] per node. Implementations typically
/// hold the per-node inputs (initial colors, lists, …).
pub trait Protocol {
    /// The node state machine this protocol spawns.
    type Program: NodeProgram;

    /// Creates the program for node `ctx.node`.
    fn spawn(&self, ctx: &NodeCtx<'_>) -> Self::Program;
}

/// Outcome of running a protocol to completion.
#[derive(Debug, Clone)]
pub struct RunOutcome<O> {
    /// Output of each node, indexed by node id.
    pub outputs: Vec<O>,
    /// Number of communication rounds executed (send+receive pairs).
    pub rounds: u64,
    /// Total number of messages delivered.
    pub messages: u64,
}

/// Error from [`run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// Not every node halted within the round limit.
    RoundLimitExceeded {
        /// The limit that was hit.
        limit: u64,
        /// How many nodes were still running.
        still_running: usize,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::RoundLimitExceeded {
                limit,
                still_running,
            } => write!(
                f,
                "round limit {limit} exceeded with {still_running} node(s) still running"
            ),
        }
    }
}

impl std::error::Error for RunError {}

/// Runs `protocol` on `net` until every node halts or `max_rounds` is hit.
///
/// # Errors
///
/// Returns [`RunError::RoundLimitExceeded`] if some node has not produced an
/// output after `max_rounds` rounds.
pub fn run<P: Protocol>(
    net: &Network<'_>,
    protocol: &P,
    max_rounds: u64,
) -> Result<RunOutcome<<P::Program as NodeProgram>::Output>, RunError> {
    let g = net.graph();
    let n = g.num_nodes();
    let mut programs: Vec<P::Program> = (0..n)
        .map(|v| protocol.spawn(&net.ctx(NodeId::from(v))))
        .collect();
    let mut outputs: Vec<Option<<P::Program as NodeProgram>::Output>> = vec![None; n];
    let mut rounds = 0u64;
    let mut messages = 0u64;

    // Collect initial outputs (0-round algorithms are allowed).
    for v in 0..n {
        outputs[v] = programs[v].output(&net.ctx(NodeId::from(v)));
    }

    // One flat CSR-indexed outbox arena for the whole run (slot
    // `adjacency_offset(v) + port` holds v's message through that port),
    // reused every round. Replaces the per-round `Vec<Vec<Option<Msg>>>`
    // outbox and inbox pyramids: no per-round allocation, `size_of::<Msg>()`
    // bytes per port plus one presence bit instead of an `Option` per slot.
    let mut arena: crate::arena::PortArena<<P::Program as NodeProgram>::Msg> =
        crate::arena::PortArena::new(g.degree_sum());
    let mut inbox: Vec<Option<<P::Program as NodeProgram>::Msg>> = Vec::new();

    while outputs.iter().any(Option::is_none) {
        if rounds >= max_rounds {
            return Err(RunError::RoundLimitExceeded {
                limit: max_rounds,
                still_running: outputs.iter().filter(|o| o.is_none()).count(),
            });
        }
        let round_span = deco_trace::round_span(deco_trace::Phase::Round, rounds);
        // Send phase: gather all outgoing messages first (synchronous
        // semantics: everything sent this round is based on last round's
        // state). Every slot of every node is rewritten or cleared each
        // round, so no stale message survives into the next delivery.
        let send_span = deco_trace::round_span(deco_trace::Phase::Send, rounds);
        for v in 0..n {
            let ctx = net.ctx(NodeId::from(v));
            let base = g.adjacency_offset(NodeId::from(v));
            let deg = ctx.degree();
            if outputs[v].is_none() {
                let mut out = programs[v].send(&ctx);
                out.truncate(deg);
                let sent = out.len();
                for (port, msg) in out.into_iter().enumerate() {
                    arena.write(base + port, msg);
                }
                arena.clear_range(base + sent..base + deg);
            } else {
                // Halted nodes stay silent.
                arena.clear_range(base..base + deg);
            }
        }
        drop(send_span);
        // Delivery phase: with the mirror-port table, delivery is implicit —
        // the message u sent through port i *is* the inbox entry of the
        // neighbor behind that port, read through `back_port` below. What
        // remains here is the message accounting: a popcount over the
        // presence words (every present slot is delivered, since every port
        // has a live neighbor behind it).
        let deliver_span = deco_trace::round_span(deco_trace::Phase::Deliver, rounds);
        messages += arena.count_present();
        drop(deliver_span);
        // Receive phase: assemble each running node's inbox view from the
        // mirror slots, one reused scratch buffer for the whole loop.
        let receive_span = deco_trace::round_span(deco_trace::Phase::Receive, rounds);
        for v in 0..n {
            if outputs[v].is_none() {
                let v_id = NodeId::from(v);
                let ctx = net.ctx(v_id);
                inbox.clear();
                for (adj, back) in g.adjacent(v_id).iter().zip(g.back_ports(v_id)) {
                    let mirror = g.adjacency_offset(adj.neighbor) + *back as usize;
                    inbox.push(arena.clone_out(mirror));
                }
                programs[v].receive(&ctx, &inbox);
                outputs[v] = programs[v].output(&ctx);
            }
        }
        drop(receive_span);
        rounds += 1;
        drop(round_span);
    }

    if deco_trace::enabled() {
        deco_trace::count(deco_trace::Counter::Messages, messages);
        deco_trace::count(deco_trace::Counter::Rounds, rounds);
    }

    Ok(RunOutcome {
        outputs: outputs
            .into_iter()
            .map(|o| o.expect("loop exits when all halted"))
            .collect(),
        rounds,
        messages,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::IdAssignment;
    use deco_graph::generators;

    /// Each node outputs the maximum ID within distance `radius` by flooding.
    struct MaxIdFlood {
        radius: u64,
    }

    struct MaxIdProgram {
        best: u64,
        round: u64,
        radius: u64,
    }

    impl NodeProgram for MaxIdProgram {
        type Msg = u64;
        type Output = u64;

        fn send(&mut self, ctx: &NodeCtx<'_>) -> Vec<Option<u64>> {
            vec![Some(self.best); ctx.degree()]
        }

        fn receive(&mut self, _ctx: &NodeCtx<'_>, inbox: &[Option<u64>]) {
            for m in inbox.iter().flatten() {
                self.best = self.best.max(*m);
            }
            self.round += 1;
        }

        fn output(&self, _ctx: &NodeCtx<'_>) -> Option<u64> {
            (self.round >= self.radius).then_some(self.best)
        }
    }

    impl Protocol for MaxIdFlood {
        type Program = MaxIdProgram;
        fn spawn(&self, ctx: &NodeCtx<'_>) -> MaxIdProgram {
            MaxIdProgram {
                best: ctx.id,
                round: 0,
                radius: self.radius,
            }
        }
    }

    #[test]
    fn flood_reaches_radius() {
        let g = generators::path(5);
        let net = Network::new(&g, IdAssignment::Sequential); // ids 1..5
        let out = run(&net, &MaxIdFlood { radius: 2 }, 100).unwrap();
        assert_eq!(out.rounds, 2);
        // Node 0 sees ids within distance 2: {1,2,3} -> 3.
        assert_eq!(out.outputs, vec![3, 4, 5, 5, 5]);
    }

    #[test]
    fn zero_round_algorithm() {
        let g = generators::path(3);
        let net = Network::new(&g, IdAssignment::Sequential);
        let out = run(&net, &MaxIdFlood { radius: 0 }, 10).unwrap();
        assert_eq!(out.rounds, 0);
        assert_eq!(out.messages, 0);
        assert_eq!(out.outputs, vec![1, 2, 3]);
    }

    #[test]
    fn round_limit_enforced() {
        let g = generators::path(3);
        let net = Network::new(&g, IdAssignment::Sequential);
        let err = run(&net, &MaxIdFlood { radius: 50 }, 5).unwrap_err();
        assert_eq!(
            err,
            RunError::RoundLimitExceeded {
                limit: 5,
                still_running: 3
            }
        );
    }

    #[test]
    fn message_count_matches_degree_sum() {
        let g = generators::cycle(4);
        let net = Network::new(&g, IdAssignment::Sequential);
        let out = run(&net, &MaxIdFlood { radius: 3 }, 10).unwrap();
        // Every node sends over both ports every round: 8 msgs * 3 rounds.
        assert_eq!(out.messages, 24);
    }

    #[test]
    fn flood_on_disconnected_graph_stays_within_component() {
        let g = generators::disjoint_union(&[generators::path(2), generators::path(2)]);
        let net = Network::new(&g, IdAssignment::Sequential); // ids 1,2,3,4
        let out = run(&net, &MaxIdFlood { radius: 4 }, 10).unwrap();
        assert_eq!(out.outputs, vec![2, 2, 4, 4]);
    }
}
