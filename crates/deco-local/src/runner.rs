//! The synchronous round executor for message-passing node programs.
//!
//! A [`NodeProgram`] is the per-node state machine of a LOCAL algorithm. In
//! every round the runner (1) asks each non-halted node for its outgoing
//! messages, (2) delivers them, (3) lets each node process its inbox. A node
//! halts by returning `Some(output)` from [`NodeProgram::output`]; the
//! execution stops when all nodes have halted.
//!
//! The runner enforces the model: a node's state can only change through
//! `receive`, and all communication flows through ports. Locality tests
//! (`locality.rs`) exploit this to verify that outputs depend only on
//! radius-T balls.

use crate::network::{Network, NodeCtx};
use deco_graph::NodeId;

/// Per-node state machine of a synchronous message-passing algorithm.
pub trait NodeProgram {
    /// Message payload exchanged with neighbors.
    type Msg: Clone;
    /// Final output of the node.
    type Output: Clone;

    /// Messages to send this round: `out[i]` goes through port `i`.
    /// Return an empty vector to send nothing anywhere.
    fn send(&mut self, ctx: &NodeCtx<'_>) -> Vec<Option<Self::Msg>>;

    /// Processes the messages received this round: `inbox[i]` arrived
    /// through port `i` (i.e. from the neighbor behind port `i`).
    fn receive(&mut self, ctx: &NodeCtx<'_>, inbox: &[Option<Self::Msg>]);

    /// The node's output once it has halted; `None` while still running.
    fn output(&self, ctx: &NodeCtx<'_>) -> Option<Self::Output>;
}

/// Factory creating one [`NodeProgram`] per node. Implementations typically
/// hold the per-node inputs (initial colors, lists, …).
pub trait Protocol {
    /// The node state machine this protocol spawns.
    type Program: NodeProgram;

    /// Creates the program for node `ctx.node`.
    fn spawn(&self, ctx: &NodeCtx<'_>) -> Self::Program;
}

/// Outcome of running a protocol to completion.
#[derive(Debug, Clone)]
pub struct RunOutcome<O> {
    /// Output of each node, indexed by node id.
    pub outputs: Vec<O>,
    /// Number of communication rounds executed (send+receive pairs).
    pub rounds: u64,
    /// Total number of messages delivered.
    pub messages: u64,
}

/// Error from [`run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// Not every node halted within the round limit.
    RoundLimitExceeded {
        /// The limit that was hit.
        limit: u64,
        /// How many nodes were still running.
        still_running: usize,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::RoundLimitExceeded {
                limit,
                still_running,
            } => write!(
                f,
                "round limit {limit} exceeded with {still_running} node(s) still running"
            ),
        }
    }
}

impl std::error::Error for RunError {}

/// Runs `protocol` on `net` until every node halts or `max_rounds` is hit.
///
/// # Errors
///
/// Returns [`RunError::RoundLimitExceeded`] if some node has not produced an
/// output after `max_rounds` rounds.
pub fn run<P: Protocol>(
    net: &Network<'_>,
    protocol: &P,
    max_rounds: u64,
) -> Result<RunOutcome<<P::Program as NodeProgram>::Output>, RunError> {
    let g = net.graph();
    let n = g.num_nodes();
    let mut programs: Vec<P::Program> = (0..n)
        .map(|v| protocol.spawn(&net.ctx(NodeId::from(v))))
        .collect();
    let mut outputs: Vec<Option<<P::Program as NodeProgram>::Output>> = vec![None; n];
    let mut rounds = 0u64;
    let mut messages = 0u64;

    // Collect initial outputs (0-round algorithms are allowed).
    for v in 0..n {
        outputs[v] = programs[v].output(&net.ctx(NodeId::from(v)));
    }

    while outputs.iter().any(Option::is_none) {
        if rounds >= max_rounds {
            return Err(RunError::RoundLimitExceeded {
                limit: max_rounds,
                still_running: outputs.iter().filter(|o| o.is_none()).count(),
            });
        }
        let round_span = deco_trace::round_span(deco_trace::Phase::Round, rounds);
        // Send phase: gather all outgoing messages first (synchronous
        // semantics: everything sent this round is based on last round's
        // state).
        let send_span = deco_trace::round_span(deco_trace::Phase::Send, rounds);
        let mut outboxes: Vec<Vec<Option<<P::Program as NodeProgram>::Msg>>> =
            Vec::with_capacity(n);
        for v in 0..n {
            let ctx = net.ctx(NodeId::from(v));
            let mut out = if outputs[v].is_none() {
                programs[v].send(&ctx)
            } else {
                Vec::new() // halted nodes stay silent
            };
            out.resize_with(ctx.degree(), || None);
            outboxes.push(out);
        }
        drop(send_span);
        // Delivery phase: message sent by u through its port i (to neighbor
        // v via edge e) arrives at v through v's port for edge e.
        let deliver_span = deco_trace::round_span(deco_trace::Phase::Deliver, rounds);
        let mut inboxes: Vec<Vec<Option<<P::Program as NodeProgram>::Msg>>> = (0..n)
            .map(|v| vec![None; g.degree(NodeId::from(v))])
            .collect();
        #[allow(clippy::needless_range_loop)] // u indexes outboxes and names the sender
        for u in 0..n {
            let u_id = NodeId::from(u);
            for (port, slot) in outboxes[u].iter().enumerate() {
                if let Some(msg) = slot {
                    let adj = g.adjacent(u_id)[port];
                    // O(1) delivery via the mirror-port table precomputed at
                    // graph build time (was an O(deg) adjacency scan).
                    let back_port = g.back_port(u_id, port);
                    inboxes[adj.neighbor.index()][back_port] = Some(msg.clone());
                    messages += 1;
                }
            }
        }
        drop(deliver_span);
        // Receive phase.
        let receive_span = deco_trace::round_span(deco_trace::Phase::Receive, rounds);
        for v in 0..n {
            if outputs[v].is_none() {
                let ctx = net.ctx(NodeId::from(v));
                programs[v].receive(&ctx, &inboxes[v]);
                outputs[v] = programs[v].output(&ctx);
            }
        }
        drop(receive_span);
        rounds += 1;
        drop(round_span);
    }

    if deco_trace::enabled() {
        deco_trace::count(deco_trace::Counter::Messages, messages);
        deco_trace::count(deco_trace::Counter::Rounds, rounds);
    }

    Ok(RunOutcome {
        outputs: outputs
            .into_iter()
            .map(|o| o.expect("loop exits when all halted"))
            .collect(),
        rounds,
        messages,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::IdAssignment;
    use deco_graph::generators;

    /// Each node outputs the maximum ID within distance `radius` by flooding.
    struct MaxIdFlood {
        radius: u64,
    }

    struct MaxIdProgram {
        best: u64,
        round: u64,
        radius: u64,
    }

    impl NodeProgram for MaxIdProgram {
        type Msg = u64;
        type Output = u64;

        fn send(&mut self, ctx: &NodeCtx<'_>) -> Vec<Option<u64>> {
            vec![Some(self.best); ctx.degree()]
        }

        fn receive(&mut self, _ctx: &NodeCtx<'_>, inbox: &[Option<u64>]) {
            for m in inbox.iter().flatten() {
                self.best = self.best.max(*m);
            }
            self.round += 1;
        }

        fn output(&self, _ctx: &NodeCtx<'_>) -> Option<u64> {
            (self.round >= self.radius).then_some(self.best)
        }
    }

    impl Protocol for MaxIdFlood {
        type Program = MaxIdProgram;
        fn spawn(&self, ctx: &NodeCtx<'_>) -> MaxIdProgram {
            MaxIdProgram {
                best: ctx.id,
                round: 0,
                radius: self.radius,
            }
        }
    }

    #[test]
    fn flood_reaches_radius() {
        let g = generators::path(5);
        let net = Network::new(&g, IdAssignment::Sequential); // ids 1..5
        let out = run(&net, &MaxIdFlood { radius: 2 }, 100).unwrap();
        assert_eq!(out.rounds, 2);
        // Node 0 sees ids within distance 2: {1,2,3} -> 3.
        assert_eq!(out.outputs, vec![3, 4, 5, 5, 5]);
    }

    #[test]
    fn zero_round_algorithm() {
        let g = generators::path(3);
        let net = Network::new(&g, IdAssignment::Sequential);
        let out = run(&net, &MaxIdFlood { radius: 0 }, 10).unwrap();
        assert_eq!(out.rounds, 0);
        assert_eq!(out.messages, 0);
        assert_eq!(out.outputs, vec![1, 2, 3]);
    }

    #[test]
    fn round_limit_enforced() {
        let g = generators::path(3);
        let net = Network::new(&g, IdAssignment::Sequential);
        let err = run(&net, &MaxIdFlood { radius: 50 }, 5).unwrap_err();
        assert_eq!(
            err,
            RunError::RoundLimitExceeded {
                limit: 5,
                still_running: 3
            }
        );
    }

    #[test]
    fn message_count_matches_degree_sum() {
        let g = generators::cycle(4);
        let net = Network::new(&g, IdAssignment::Sequential);
        let out = run(&net, &MaxIdFlood { radius: 3 }, 10).unwrap();
        // Every node sends over both ports every round: 8 msgs * 3 rounds.
        assert_eq!(out.messages, 24);
    }

    #[test]
    fn flood_on_disconnected_graph_stays_within_component() {
        let g = generators::disjoint_union(&[generators::path(2), generators::path(2)]);
        let net = Network::new(&g, IdAssignment::Sequential); // ids 1,2,3,4
        let out = run(&net, &MaxIdFlood { radius: 4 }, 10).unwrap();
        assert_eq!(out.outputs, vec![2, 2, 4, 4]);
    }
}
