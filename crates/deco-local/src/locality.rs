//! Locality verification.
//!
//! The defining property of a `T`-round LOCAL algorithm is that the output
//! of node `v` is a function of the radius-`T` ball around `v` (topology +
//! IDs). [`check_locality`] tests this operationally: it perturbs the graph
//! strictly outside the ball (removing edges whose endpoints are both at
//! distance > `T`), reruns the algorithm, and requires `v`'s output to be
//! unchanged.
//!
//! The perturbation keeps `n` and the ID assignment fixed and only picks
//! edges whose removal does not change the maximum degree, so the global
//! knowledge available to the algorithm (`n`, `Δ`, ID bound) is identical in
//! both runs.

use deco_graph::{traversal, EdgeId, Graph, NodeId};
use std::fmt;

/// A detected locality violation: removing an edge entirely outside the
/// radius-`radius` ball of `node` changed that node's output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalityViolation {
    /// The node whose output changed.
    pub node: NodeId,
    /// The far-away edge whose removal changed the output.
    pub removed_edge: EdgeId,
    /// The claimed locality radius.
    pub radius: usize,
}

impl fmt::Display for LocalityViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "output of {} changed after removing {} outside its radius-{} ball",
            self.node, self.removed_edge, self.radius
        )
    }
}

impl std::error::Error for LocalityViolation {}

/// Checks that `run_fn`'s per-node outputs have locality radius ≤ `radius`
/// at each node in `victims`.
///
/// `run_fn` receives a graph and the (unchanged) ID array and must return
/// one output per node. It should derive any global parameters it uses
/// (`n`, ID bound) from those arguments; the checker guarantees `n`, the
/// IDs, and the max degree are identical across the perturbed runs.
///
/// For each victim `v`, up to `max_perturbations` far edges are removed one
/// at a time (edges with both endpoints at distance > `radius` from `v`
/// whose removal preserves the maximum degree).
///
/// # Errors
///
/// Returns the first [`LocalityViolation`] found.
pub fn check_locality<O, F>(
    g: &Graph,
    ids: &[u64],
    radius: usize,
    victims: &[NodeId],
    max_perturbations: usize,
    run_fn: F,
) -> Result<(), LocalityViolation>
where
    O: PartialEq + Clone,
    F: Fn(&Graph, &[u64]) -> Vec<O>,
{
    let baseline = run_fn(g, ids);
    let delta = g.max_degree();
    for &v in victims {
        let dist = traversal::bfs_distances(g, v);
        let far_edges: Vec<EdgeId> = g
            .edges()
            .filter(|&e| {
                let [a, b] = g.endpoints(e);
                let da = dist[a.index()];
                let db = dist[b.index()];
                da > radius && db > radius
            })
            .take(max_perturbations)
            .collect();
        for e in far_edges {
            let pruned = remove_edge(g, e);
            if pruned.max_degree() != delta {
                continue; // removal would change global knowledge Δ; skip
            }
            let outputs = run_fn(&pruned, ids);
            if outputs[v.index()] != baseline[v.index()] {
                return Err(LocalityViolation {
                    node: v,
                    removed_edge: e,
                    radius,
                });
            }
        }
    }
    Ok(())
}

/// Returns a copy of `g` with edge `e` removed (node set unchanged).
pub fn remove_edge(g: &Graph, e: EdgeId) -> Graph {
    let edges = g
        .edges()
        .filter(|&f| f != e)
        .map(|f| {
            let [u, v] = g.endpoints(f);
            (u.index(), v.index())
        })
        .collect::<Vec<_>>();
    Graph::from_edges(g.num_nodes(), edges).expect("removing an edge keeps the graph simple")
}

#[cfg(test)]
mod tests {
    use super::*;
    use deco_graph::generators;

    #[test]
    fn remove_edge_keeps_nodes() {
        let g = generators::cycle(5);
        let h = remove_edge(&g, EdgeId(2));
        assert_eq!(h.num_nodes(), 5);
        assert_eq!(h.num_edges(), 4);
    }

    #[test]
    fn local_algorithm_passes() {
        // "Output = own id" is 0-local.
        let g = generators::path(10);
        let ids: Vec<u64> = (1..=10).collect();
        let result = check_locality(&g, &ids, 0, &[NodeId(0), NodeId(5)], 4, |g, ids| {
            g.nodes().map(|v| ids[v.index()]).collect::<Vec<u64>>()
        });
        assert!(result.is_ok());
    }

    #[test]
    fn one_local_algorithm_passes_at_radius_one() {
        // "Output = sum of ids within distance 1" is 1-local.
        let g = generators::grid(5, 5);
        let ids: Vec<u64> = (1..=25).collect();
        let result = check_locality(&g, &ids, 1, &[NodeId(12), NodeId(0)], 6, |g, ids| {
            g.nodes()
                .map(|v| ids[v.index()] + g.neighbors(v).map(|w| ids[w.index()]).sum::<u64>())
                .collect::<Vec<u64>>()
        });
        assert!(result.is_ok());
    }

    #[test]
    fn global_algorithm_is_caught() {
        // "Output = number of edges" is not local at all.
        let g = generators::cycle(12);
        let ids: Vec<u64> = (1..=12).collect();
        let result = check_locality(&g, &ids, 1, &[NodeId(0)], 8, |g, _| {
            vec![g.num_edges() as u64; g.num_nodes()]
        });
        assert!(result.is_err());
        let v = result.unwrap_err();
        assert_eq!(v.node, NodeId(0));
        assert_eq!(v.radius, 1);
    }

    #[test]
    fn perturbations_preserving_delta_only() {
        // On a star there are no far edges at all from the center, so the
        // check passes vacuously even for a global function.
        let g = generators::star(5);
        let ids: Vec<u64> = (1..=6).collect();
        let result = check_locality(&g, &ids, 1, &[NodeId(0)], 8, |g, _| {
            vec![g.num_edges() as u64; g.num_nodes()]
        });
        assert!(result.is_ok());
    }
}
