//! The [`Executor`] abstraction: *what* runs a protocol, decoupled from
//! *which* protocol runs.
//!
//! [`runner::run`] is the reference executor — a
//! straightforward serial loop whose behavior defines the model. Faster
//! executors (the flat-mailbox, multi-threaded engine in `deco-engine`)
//! implement [`Executor`] and are required to be *observationally
//! identical*: same outputs, same round count, same message count, same
//! errors, for every protocol and network. Callers that execute protocols
//! (the Theorem 4.1 solver, the experiment harness) take an `&impl Executor`
//! so the substrate can be swapped without touching algorithm code.
//!
//! The trait bounds (`Send`/`Sync` on programs, messages, and outputs) are
//! what a multi-threaded executor fundamentally needs; every protocol in
//! this workspace satisfies them for free since programs are plain data.
//!
//! The contract is *observational*, not operational: an executor promises
//! the serial runner's outputs, round count (the maximum local halting
//! round), message count, and errors — it does **not** promise to run
//! rounds in lockstep, and it does not even promise to run in one address
//! space. `deco-engine`'s barrier executor keeps global phases; its
//! barrier-free `AsyncExecutor` advances every node on a component-local
//! round clock, with adjacent nodes up to one round apart; its
//! `ShardedExecutor` partitions the network into shards whose only
//! coupling is the per-round exchange of cut-edge messages, with whole
//! *shards* up to one round apart (and a framed variant runs each shard
//! in its own worker process). All are legal implementations precisely
//! because a node's round-`r` state depends only on its radius-`r`
//! neighborhood, so any dependency-respecting schedule — threaded,
//! clock-driven, or distributed across processes — reproduces the
//! synchronous execution bit for bit. The differential suites hold every
//! implementation to this, error cases included: an executor that can
//! fail for *operational* reasons (a dead worker process, a broken pipe)
//! must surface those as its own transport-level errors, never by
//! reinterpreting them as model-level [`RunError`]s.
//!
//! Besides protocol execution, an [`Executor`] also decides how a caller's
//! *logically parallel branches* run ([`Executor::execute_branches`]): the
//! Theorem 4.1 solver's per-subspace residuals and per-class slack-β solves
//! are independent sub-computations composed with `CostNode::par`, and the
//! executor may fan them out over worker threads. The contract is the same
//! as for protocols: results are returned in branch order, so parallelism
//! is observationally invisible.

use crate::network::Network;
use crate::runner::{self, NodeProgram, Protocol, RunError, RunOutcome};

/// A strategy for running a [`Protocol`] to completion on a [`Network`],
/// and for executing batches of independent branch computations.
///
/// Executors are shared by reference across the worker threads they spawn
/// (branches recurse into the same executor), hence the `Sync` bound.
pub trait Executor: Sync {
    /// Runs `protocol` on `net` until every node halts or `max_rounds` is
    /// hit. Must be observationally identical to [`runner::run`].
    ///
    /// # Errors
    ///
    /// Returns [`RunError::RoundLimitExceeded`] exactly when the serial
    /// runner would.
    fn execute<P>(
        &self,
        net: &Network<'_>,
        protocol: &P,
        max_rounds: u64,
    ) -> Result<RunOutcome<<P::Program as NodeProgram>::Output>, RunError>
    where
        P: Protocol,
        P::Program: Send,
        <P::Program as NodeProgram>::Msg: Send + Sync,
        <P::Program as NodeProgram>::Output: Send;

    /// Runs the independent branch computations `0..weights.len()`, where
    /// `run(i)` produces branch `i`'s result, and returns the results **in
    /// branch order**. `weights[i]` estimates branch `i`'s work (e.g. its
    /// sub-instance edge count) so a threaded implementation can balance
    /// worker loads; it must not influence any result.
    ///
    /// The branches must be mutually independent (no branch reads state
    /// another branch writes). Implementations may run them in any order or
    /// concurrently, but the returned vector is always index-ordered, so a
    /// caller that merges results sequentially observes exactly the serial
    /// execution. The default implementation runs the branches serially in
    /// index order.
    fn execute_branches<T, F>(&self, weights: &[usize], run: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        (0..weights.len()).map(run).collect()
    }
}

/// The reference executor: delegates to the serial [`runner::run`] loop.
///
/// Always available, always correct, and the differential-testing oracle
/// for every other [`Executor`] implementation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SerialExecutor;

impl Executor for SerialExecutor {
    fn execute<P>(
        &self,
        net: &Network<'_>,
        protocol: &P,
        max_rounds: u64,
    ) -> Result<RunOutcome<<P::Program as NodeProgram>::Output>, RunError>
    where
        P: Protocol,
        P::Program: Send,
        <P::Program as NodeProgram>::Msg: Send + Sync,
        <P::Program as NodeProgram>::Output: Send,
    {
        runner::run(net, protocol, max_rounds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{IdAssignment, NodeCtx};
    use deco_graph::generators;

    /// Trivial 1-round echo protocol for exercising the trait object-free
    /// dispatch path.
    struct Echo;
    struct EchoProgram {
        heard: u64,
        done: bool,
    }

    impl NodeProgram for EchoProgram {
        type Msg = u64;
        type Output = u64;
        fn send(&mut self, ctx: &NodeCtx<'_>) -> Vec<Option<u64>> {
            vec![Some(self.heard); ctx.degree()]
        }
        fn receive(&mut self, _ctx: &NodeCtx<'_>, inbox: &[Option<u64>]) {
            self.heard += inbox.iter().flatten().sum::<u64>();
            self.done = true;
        }
        fn output(&self, _ctx: &NodeCtx<'_>) -> Option<u64> {
            self.done.then_some(self.heard)
        }
    }

    impl Protocol for Echo {
        type Program = EchoProgram;
        fn spawn(&self, ctx: &NodeCtx<'_>) -> EchoProgram {
            EchoProgram {
                heard: ctx.id,
                done: false,
            }
        }
    }

    #[test]
    fn default_branch_execution_is_index_ordered() {
        let weights = vec![3usize, 1, 4, 1, 5];
        let out = SerialExecutor.execute_branches(&weights, |i| i * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40]);
        let empty: Vec<usize> = SerialExecutor.execute_branches(&[], |i| i);
        assert!(empty.is_empty());
    }

    #[test]
    fn serial_executor_matches_run() {
        let g = generators::cycle(6);
        let net = Network::new(&g, IdAssignment::Sequential);
        let via_trait = SerialExecutor.execute(&net, &Echo, 10).unwrap();
        let direct = runner::run(&net, &Echo, 10).unwrap();
        assert_eq!(via_trait.outputs, direct.outputs);
        assert_eq!(via_trait.rounds, direct.rounds);
        assert_eq!(via_trait.messages, direct.messages);
    }
}
