//! Small numeric helpers shared by budgets and algorithms: iterated
//! logarithm, harmonic numbers, primes, and power-of-two utilities.

/// Iterated logarithm `log*₂(x)`: the number of times `log₂` must be applied
/// to `x` before the result is ≤ 1. `log_star(1) = 0`, `log_star(2) = 1`,
/// `log_star(16) = 3`, `log_star(65536) = 4`.
pub fn log_star(x: f64) -> u32 {
    let mut x = x;
    let mut k = 0;
    while x > 1.0 {
        x = x.log2();
        k += 1;
        if k > 128 {
            break; // unreachable for finite f64, defensive
        }
    }
    k
}

/// Integer convenience wrapper for [`log_star`].
pub fn log_star_u(x: u64) -> u32 {
    log_star(x as f64)
}

/// The `p`-th harmonic number `H_p = Σ_{i=1..p} 1/i`; `H_0 = 0`.
pub fn harmonic(p: u64) -> f64 {
    if p < 1_000_000 {
        (1..=p).map(|i| 1.0 / i as f64).sum()
    } else {
        // H_p ≈ ln p + γ + 1/(2p); error < 1/(8p²), far below f64 noise here.
        const EULER_GAMMA: f64 = 0.577_215_664_901_532_9;
        (p as f64).ln() + EULER_GAMMA + 1.0 / (2.0 * p as f64)
    }
}

/// `⌈log₂(x)⌉` for `x ≥ 1`.
///
/// # Panics
///
/// Panics if `x == 0`.
pub fn ceil_log2(x: u64) -> u32 {
    assert!(x > 0, "ceil_log2(0) is undefined");
    64 - (x - 1).leading_zeros().min(64)
}

/// `⌊log₂(x)⌋` for `x ≥ 1`.
///
/// # Panics
///
/// Panics if `x == 0`.
pub fn floor_log2(x: u64) -> u32 {
    assert!(x > 0, "floor_log2(0) is undefined");
    63 - x.leading_zeros()
}

/// Deterministic primality test by trial division (fine for the ≤ 10⁷ range
/// used by Linial's polynomial construction).
pub fn is_prime(x: u64) -> bool {
    if x < 2 {
        return false;
    }
    if x.is_multiple_of(2) {
        return x == 2;
    }
    let mut d = 3;
    while d * d <= x {
        if x.is_multiple_of(d) {
            return false;
        }
        d += 2;
    }
    true
}

/// The smallest prime strictly greater than `x`.
pub fn next_prime(x: u64) -> u64 {
    let mut candidate = x + 1;
    while !is_prime(candidate) {
        candidate += 1;
    }
    candidate
}

/// Integer ceiling division `⌈a / b⌉`.
///
/// # Panics
///
/// Panics if `b == 0`.
pub fn div_ceil(a: u64, b: u64) -> u64 {
    assert!(b > 0, "division by zero");
    a.div_euclid(b) + u64::from(!a.is_multiple_of(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_star_values() {
        assert_eq!(log_star(1.0), 0);
        assert_eq!(log_star(2.0), 1);
        assert_eq!(log_star(4.0), 2);
        assert_eq!(log_star(16.0), 3);
        assert_eq!(log_star(65536.0), 4);
        assert_eq!(log_star(2.0f64.powi(100)), 5);
        assert_eq!(log_star_u(65536), 4);
    }

    #[test]
    fn harmonic_values() {
        assert_eq!(harmonic(0), 0.0);
        assert!((harmonic(1) - 1.0).abs() < 1e-12);
        assert!((harmonic(4) - (1.0 + 0.5 + 1.0 / 3.0 + 0.25)).abs() < 1e-12);
        // Asymptotic branch agrees with direct summation.
        let direct: f64 = (1..=2_000_000u64).map(|i| 1.0 / i as f64).sum();
        assert!((harmonic(2_000_000) - direct).abs() < 1e-9);
    }

    #[test]
    fn log2_helpers() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(8), 3);
        assert_eq!(ceil_log2(9), 4);
        assert_eq!(floor_log2(1), 0);
        assert_eq!(floor_log2(8), 3);
        assert_eq!(floor_log2(9), 3);
    }

    #[test]
    fn prime_helpers() {
        assert!(!is_prime(0));
        assert!(!is_prime(1));
        assert!(is_prime(2));
        assert!(is_prime(3));
        assert!(!is_prime(9));
        assert!(is_prime(7919));
        assert_eq!(next_prime(1), 2);
        assert_eq!(next_prime(2), 3);
        assert_eq!(next_prime(13), 17);
        assert_eq!(next_prime(100), 101);
    }

    #[test]
    fn div_ceil_values() {
        assert_eq!(div_ceil(0, 4), 0);
        assert_eq!(div_ceil(1, 4), 1);
        assert_eq!(div_ceil(4, 4), 1);
        assert_eq!(div_ceil(5, 4), 2);
    }
}
