//! # deco-local — the LOCAL model of distributed computing, executable
//!
//! This crate implements the model from §2.2 of Balliu–Kuhn–Olivetti
//! (PODC 2020): a synchronous message-passing network where nodes know `n`,
//! `Δ`, and a unique ID from `{1, …, n^{O(1)}}`, exchange arbitrarily large
//! messages with neighbors each round, and must eventually output their part
//! of the solution.
//!
//! Three layers:
//!
//! * [`network`] / [`runner`] — a faithful port-numbered synchronous
//!   executor for per-node state machines ([`runner::NodeProgram`]).
//! * [`cost`] — round accounting for *phase-structured* algorithms: cost
//!   trees with sequential (sum) and parallel (max) composition, carrying
//!   both the actually-used rounds and the fixed-schedule budget.
//! * [`locality`] — an operational verifier that a claimed `T`-round
//!   algorithm's outputs really only depend on radius-`T` balls.
//!
//! Plus [`math`]: `log*`, harmonic numbers, and prime utilities used by the
//! round-complexity formulas throughout the workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod cost;
pub mod exec;
pub mod locality;
pub mod math;
pub mod network;
pub mod runner;

pub use arena::{ArenaWriter, PortArena};
pub use cost::{Compose, CostNode};
pub use exec::{Executor, SerialExecutor};
pub use network::{IdAssignment, Network, NodeCtx};
pub use runner::{run, NodeProgram, Protocol, RunError, RunOutcome};
