//! Round-cost accounting for LOCAL algorithms.
//!
//! Every algorithm in this workspace reports *how many synchronous rounds it
//! used* via a [`CostNode`] tree mirroring the algorithm's structure:
//!
//! * a **leaf** charges a fixed number of rounds (e.g. "exchange colors with
//!   neighbors" = 1);
//! * a **sequential** node runs its children one after another — rounds add;
//! * a **parallel** node runs its children simultaneously on edge-disjoint
//!   subinstances — rounds take the maximum.
//!
//! Each node optionally carries the *scheduled budget*: the worst-case number
//! of rounds allotted by the fixed LOCAL schedule (§2 of DESIGN.md). In
//! faithful mode actual == budget; in practical mode actual ≤ budget is
//! asserted by tests.

use std::fmt;

/// How the children of a [`CostNode`] compose in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Compose {
    /// Children run one after the other; rounds add.
    Sequential,
    /// Children run at the same time on disjoint parts; rounds take the max.
    Parallel,
}

/// A node in the round-cost tree of an algorithm execution.
#[derive(Debug, Clone, PartialEq)]
pub struct CostNode {
    /// Human-readable label ("defective-coloring", "phase 4", …).
    pub label: String,
    /// How children compose.
    pub compose: Compose,
    /// Rounds charged by this node itself, in addition to its children.
    pub own_rounds: u64,
    /// Scheduled worst-case rounds for this node (including children), if a
    /// fixed schedule was computed.
    pub budget: Option<f64>,
    /// Sub-steps.
    pub children: Vec<CostNode>,
}

impl CostNode {
    /// A leaf charging `rounds` rounds.
    pub fn leaf(label: impl Into<String>, rounds: u64) -> CostNode {
        CostNode {
            label: label.into(),
            compose: Compose::Sequential,
            own_rounds: rounds,
            budget: None,
            children: Vec::new(),
        }
    }

    /// A zero-cost marker (useful for skipped phases).
    pub fn free(label: impl Into<String>) -> CostNode {
        CostNode::leaf(label, 0)
    }

    /// A sequential composition of `children`.
    pub fn seq(label: impl Into<String>, children: Vec<CostNode>) -> CostNode {
        CostNode {
            label: label.into(),
            compose: Compose::Sequential,
            own_rounds: 0,
            budget: None,
            children,
        }
    }

    /// A parallel composition of `children` (they run simultaneously on
    /// disjoint subinstances; cost is the max).
    pub fn par(label: impl Into<String>, children: Vec<CostNode>) -> CostNode {
        CostNode {
            label: label.into(),
            compose: Compose::Parallel,
            own_rounds: 0,
            budget: None,
            children,
        }
    }

    /// Sets the scheduled budget, builder-style.
    pub fn with_budget(mut self, budget: f64) -> CostNode {
        self.budget = Some(budget);
        self
    }

    /// Adds rounds charged by this node itself, builder-style.
    pub fn with_own_rounds(mut self, rounds: u64) -> CostNode {
        self.own_rounds = rounds;
        self
    }

    /// Total actual rounds: own rounds plus the sequential-sum / parallel-max
    /// of the children.
    pub fn actual_rounds(&self) -> u64 {
        let child_total = match self.compose {
            Compose::Sequential => self.children.iter().map(CostNode::actual_rounds).sum(),
            Compose::Parallel => self
                .children
                .iter()
                .map(CostNode::actual_rounds)
                .max()
                .unwrap_or(0),
        };
        self.own_rounds + child_total
    }

    /// Number of nodes in the tree (for trace-size reporting).
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(CostNode::size).sum::<usize>()
    }

    /// Renders the tree with per-node actual rounds (and budgets when set).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out
    }

    fn render_into(&self, out: &mut String, depth: usize) {
        use std::fmt::Write as _;
        let indent = "  ".repeat(depth);
        let tag = match self.compose {
            Compose::Sequential if self.children.is_empty() => "",
            Compose::Sequential => " [seq]",
            Compose::Parallel => " [par]",
        };
        let _ = write!(
            out,
            "{indent}{}{tag}: {} rounds",
            self.label,
            self.actual_rounds()
        );
        if let Some(b) = self.budget {
            let _ = write!(out, " (budget {b:.0})");
        }
        out.push('\n');
        for c in &self.children {
            c.render_into(out, depth + 1);
        }
    }
}

impl fmt::Display for CostNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_cost() {
        let n = CostNode::leaf("exchange", 1);
        assert_eq!(n.actual_rounds(), 1);
        assert_eq!(n.size(), 1);
    }

    #[test]
    fn sequential_adds() {
        let n = CostNode::seq(
            "two-steps",
            vec![CostNode::leaf("a", 2), CostNode::leaf("b", 3)],
        );
        assert_eq!(n.actual_rounds(), 5);
    }

    #[test]
    fn parallel_maxes() {
        let n = CostNode::par(
            "instances",
            vec![
                CostNode::leaf("a", 2),
                CostNode::leaf("b", 7),
                CostNode::leaf("c", 1),
            ],
        );
        assert_eq!(n.actual_rounds(), 7);
    }

    #[test]
    fn nested_composition() {
        // seq( leaf 1, par(3, seq(2,2)), leaf 1 ) = 1 + max(3,4) + 1 = 6
        let n = CostNode::seq(
            "outer",
            vec![
                CostNode::leaf("pre", 1),
                CostNode::par(
                    "mid",
                    vec![
                        CostNode::leaf("x", 3),
                        CostNode::seq("y", vec![CostNode::leaf("y1", 2), CostNode::leaf("y2", 2)]),
                    ],
                ),
                CostNode::leaf("post", 1),
            ],
        );
        assert_eq!(n.actual_rounds(), 6);
        assert_eq!(n.size(), 8); // outer, pre, mid, x, y, y1, y2, post
    }

    #[test]
    fn own_rounds_add_to_children() {
        let n = CostNode::par("p", vec![CostNode::leaf("a", 4)]).with_own_rounds(2);
        assert_eq!(n.actual_rounds(), 6);
    }

    #[test]
    fn empty_parallel_is_zero() {
        assert_eq!(CostNode::par("none", vec![]).actual_rounds(), 0);
        assert_eq!(CostNode::free("skip").actual_rounds(), 0);
    }

    #[test]
    fn render_mentions_budget() {
        let n = CostNode::leaf("step", 3).with_budget(10.0);
        let s = n.render();
        assert!(s.contains("step"));
        assert!(s.contains("3 rounds"));
        assert!(s.contains("budget 10"));
    }
}
