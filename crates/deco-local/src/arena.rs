//! Dense message arenas with bitmap presence words — the mailbox diet.
//!
//! Every engine in the workspace used to park messages in `Option<M>` slot
//! arenas (`Vec<Option<M>>`, `[Option<M>; 2]`). For small payloads the
//! `Option` tag can double the slot size (16 bytes for a `u64` message),
//! and the hot deliver path pays a branch per slot on the discriminant.
//! [`PortArena`] stores the payloads densely (`Vec<M>`) and keeps presence
//! in a separate bitmap — one `u64` per 64 ports — so a slot costs
//! `size_of::<M>()` bytes plus one bit, occupancy counting is a popcount,
//! and clearing a node's ports is a handful of mask operations.
//!
//! A slot whose presence bit is off may hold a stale payload from an
//! earlier round; the bit is authoritative and every accessor checks it, so
//! stale bytes are never observable. This is what makes the arena a pure
//! representation change: engines that swap `Vec<Option<M>>` for
//! [`PortArena`] keep bit-identical outputs, round counts, and message
//! counts.
//!
//! The presence words are `AtomicU64` so the parallel engines can write
//! disjoint slot ranges concurrently (see [`PortArena::split_writers`]):
//! two writers whose ranges share a boundary word combine their bits with
//! `fetch_or`/`fetch_and` instead of racing. Single-owner paths (`&mut
//! self` methods) compile down to plain loads and stores via `get_mut`.

use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};

/// A dense message arena: payload slots plus one presence bit per slot.
///
/// `M: Default` supplies the filler for vacant slots (all message types in
/// this workspace are plain data — integers, small tuples, field-less enum
/// variants — so the default is free); `M: Clone` serves the deliver path,
/// which clones a message out of the sender's slot into the receiver's
/// inbox view.
#[derive(Debug)]
pub struct PortArena<M> {
    slots: Vec<M>,
    /// Presence bitmap: bit `k % 64` of word `k / 64` covers slot `k`.
    present: Vec<AtomicU64>,
}

impl<M: Clone + Default> PortArena<M> {
    /// An arena of `len` vacant slots.
    pub fn new(len: usize) -> Self {
        let mut slots = Vec::new();
        slots.resize_with(len, M::default);
        let words = len.div_ceil(64);
        let mut present = Vec::with_capacity(words);
        present.resize_with(words, || AtomicU64::new(0));
        PortArena { slots, present }
    }

    /// Number of slots.
    #[inline]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the arena has zero slots.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Fills slot `k` with `msg` and marks it present.
    #[inline]
    pub fn set(&mut self, k: usize, msg: M) {
        self.slots[k] = msg;
        *self.present[k / 64].get_mut() |= 1u64 << (k % 64);
    }

    /// Marks slot `k` vacant (the stale payload stays, unobservable).
    #[inline]
    pub fn clear(&mut self, k: usize) {
        *self.present[k / 64].get_mut() &= !(1u64 << (k % 64));
    }

    /// Sets or clears slot `k` from an `Option`, the shape node programs
    /// produce.
    #[inline]
    pub fn write(&mut self, k: usize, msg: Option<M>) {
        match msg {
            Some(m) => self.set(k, m),
            None => self.clear(k),
        }
    }

    /// Whether slot `k` is present.
    #[inline]
    pub fn is_present(&self, k: usize) -> bool {
        let word = self.present[k / 64].load(Ordering::Relaxed);
        word & (1u64 << (k % 64)) != 0
    }

    /// Borrows the payload of slot `k` if present.
    #[inline]
    pub fn get(&self, k: usize) -> Option<&M> {
        self.is_present(k).then(|| &self.slots[k])
    }

    /// Clones the payload of slot `k` out if present — the deliver path.
    #[inline]
    pub fn clone_out(&self, k: usize) -> Option<M> {
        self.is_present(k).then(|| self.slots[k].clone())
    }

    /// Moves the payload of slot `k` out if present, leaving the slot
    /// vacant (the moved-from default stays as the stale payload).
    #[inline]
    pub fn take(&mut self, k: usize) -> Option<M> {
        if self.is_present(k) {
            self.clear(k);
            Some(std::mem::take(&mut self.slots[k]))
        } else {
            None
        }
    }

    /// Marks every slot in `range` vacant — a halted node's ports in a few
    /// mask operations instead of a per-slot write.
    pub fn clear_range(&mut self, range: Range<usize>) {
        let Range { start, end } = range;
        debug_assert!(start <= end && end <= self.len());
        if start >= end {
            return;
        }
        let (first_word, last_word) = (start / 64, (end - 1) / 64);
        let low_mask = !0u64 << (start % 64); // bits >= start%64
        let high_mask = !0u64 >> (63 - (end - 1) % 64); // bits <= (end-1)%64
        if first_word == last_word {
            *self.present[first_word].get_mut() &= !(low_mask & high_mask);
        } else {
            *self.present[first_word].get_mut() &= !low_mask;
            for w in first_word + 1..last_word {
                *self.present[w].get_mut() = 0;
            }
            *self.present[last_word].get_mut() &= !high_mask;
        }
    }

    /// Marks every slot vacant.
    pub fn clear_all(&mut self) {
        for w in &mut self.present {
            *w.get_mut() = 0;
        }
    }

    /// Heap bytes held by the arena: dense payload slots plus the presence
    /// bitmap. This is the number the mailbox-diet reports quote per engine
    /// (`size_of::<M>()` per slot + one bit per slot, against the
    /// `size_of::<Option<M>>()` per slot of the old layout).
    pub fn heap_bytes(&self) -> usize {
        self.slots.len() * std::mem::size_of::<M>()
            + self.present.len() * std::mem::size_of::<u64>()
    }

    /// Number of present slots — one popcount per 64 ports.
    pub fn count_present(&self) -> u64 {
        self.present
            .iter()
            .map(|w| u64::from(w.load(Ordering::Relaxed).count_ones()))
            .sum()
    }

    /// Iterates `(slot, payload)` over present slots in index order,
    /// skipping vacant words wholesale.
    pub fn iter_present(&self) -> impl Iterator<Item = (usize, &M)> + '_ {
        self.present
            .iter()
            .enumerate()
            .flat_map(move |(wi, word)| {
                let mut bits = word.load(Ordering::Relaxed);
                std::iter::from_fn(move || {
                    if bits == 0 {
                        return None;
                    }
                    let bit = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + bit)
                })
            })
            .map(move |k| (k, &self.slots[k]))
    }

    /// Splits the arena into one [`ArenaWriter`] per range for a parallel
    /// send phase. Ranges must be disjoint, in ascending order, and cover
    /// indices within the arena; each writer gets exclusive `&mut` access
    /// to its payload slots while presence bits go through the shared
    /// atomic words (boundary words may be shared between neighbors — the
    /// `fetch_or`/`fetch_and` there is what keeps the split safe without
    /// word-aligning the ranges).
    ///
    /// # Panics
    ///
    /// Panics if ranges overlap, regress, or exceed the arena.
    pub fn split_writers<'a>(&'a mut self, ranges: &[Range<usize>]) -> Vec<ArenaWriter<'a, M>> {
        let present: &'a [AtomicU64] = &self.present;
        let mut writers = Vec::with_capacity(ranges.len());
        let mut rest: &'a mut [M] = &mut self.slots;
        let mut consumed = 0usize;
        for r in ranges {
            assert!(r.start >= consumed, "ranges must ascend without overlap");
            let (skip, tail) = rest.split_at_mut(r.start - consumed);
            let _ = skip;
            let (chunk, tail) = tail.split_at_mut(r.end - r.start);
            rest = tail;
            consumed = r.end;
            writers.push(ArenaWriter {
                start: r.start,
                slots: chunk,
                present,
            });
        }
        writers
    }
}

/// Exclusive write access to one slot range of a [`PortArena`], with
/// presence updates routed through the shared atomic bitmap. Handed out by
/// [`PortArena::split_writers`]; indices are *global* arena indices.
#[derive(Debug)]
pub struct ArenaWriter<'a, M> {
    start: usize,
    slots: &'a mut [M],
    present: &'a [AtomicU64],
}

impl<M: Clone + Default> ArenaWriter<'_, M> {
    /// First global slot index of this writer's range.
    #[inline]
    pub fn start(&self) -> usize {
        self.start
    }

    /// Number of slots in this writer's range.
    #[inline]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether this writer's range is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Fills global slot `k` and marks it present.
    #[inline]
    pub fn set(&mut self, k: usize, msg: M) {
        self.slots[k - self.start] = msg;
        self.present[k / 64].fetch_or(1u64 << (k % 64), Ordering::Relaxed);
    }

    /// Marks global slot `k` vacant.
    #[inline]
    pub fn clear(&mut self, k: usize) {
        // Bounds-check against this writer's range even though only the
        // bitmap is touched: clearing another writer's slot would be a
        // logic bug the payload write would have caught.
        let _ = &self.slots[k - self.start];
        self.present[k / 64].fetch_and(!(1u64 << (k % 64)), Ordering::Relaxed);
    }

    /// Sets or clears global slot `k` from an `Option`.
    #[inline]
    pub fn write(&mut self, k: usize, msg: Option<M>) {
        match msg {
            Some(m) => self.set(k, m),
            None => self.clear(k),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_clear_take_roundtrip() {
        let mut a: PortArena<u64> = PortArena::new(130);
        assert!(a.clone_out(0).is_none());
        a.set(0, 7);
        a.set(64, 8);
        a.set(129, 9);
        assert_eq!(a.clone_out(0), Some(7));
        assert_eq!(a.get(64), Some(&8));
        assert_eq!(a.count_present(), 3);
        assert_eq!(a.take(129), Some(9));
        assert_eq!(a.take(129), None);
        a.clear(0);
        assert!(!a.is_present(0));
        assert_eq!(a.count_present(), 1);
    }

    #[test]
    fn stale_payload_is_unobservable() {
        let mut a: PortArena<u64> = PortArena::new(4);
        a.set(2, 41);
        a.clear(2);
        assert_eq!(a.get(2), None);
        assert_eq!(a.clone_out(2), None);
        assert_eq!(a.iter_present().count(), 0);
    }

    #[test]
    fn clear_range_handles_word_boundaries() {
        let mut a: PortArena<u32> = PortArena::new(200);
        for k in 0..200 {
            a.set(k, k as u32);
        }
        a.clear_range(60..70); // spans the word 0 / word 1 boundary
        a.clear_range(128..192); // exactly word 2
        a.clear_range(5..5); // empty
        assert_eq!(a.count_present(), 200 - 10 - 64);
        for k in 0..200 {
            let expect = !(60..70).contains(&k) && !(128..192).contains(&k);
            assert_eq!(a.is_present(k), expect, "slot {k}");
        }
    }

    #[test]
    fn iter_present_is_in_index_order() {
        let mut a: PortArena<u64> = PortArena::new(300);
        for k in [3usize, 64, 65, 190, 299] {
            a.set(k, k as u64 * 10);
        }
        let got: Vec<(usize, u64)> = a.iter_present().map(|(k, m)| (k, *m)).collect();
        assert_eq!(
            got,
            vec![(3, 30), (64, 640), (65, 650), (190, 1900), (299, 2990)]
        );
    }

    #[test]
    fn split_writers_cover_disjoint_ranges_and_shared_words() {
        let mut a: PortArena<u64> = PortArena::new(100);
        // Ranges deliberately split inside word 0 and word 1.
        let ranges = vec![0..30, 30..70, 70..100];
        let mut writers = a.split_writers(&ranges);
        std::thread::scope(|scope| {
            for w in &mut writers {
                scope.spawn(move || {
                    let (start, len) = (w.start(), w.len());
                    for k in start..start + len {
                        if k % 3 == 0 {
                            w.set(k, k as u64);
                        } else {
                            w.clear(k);
                        }
                    }
                });
            }
        });
        drop(writers);
        for k in 0..100 {
            if k % 3 == 0 {
                assert_eq!(a.clone_out(k), Some(k as u64), "slot {k}");
            } else {
                assert!(!a.is_present(k), "slot {k}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "ranges must ascend")]
    fn split_writers_rejects_overlap() {
        let mut a: PortArena<u64> = PortArena::new(10);
        let _ = a.split_writers(&[0..6, 4..10]);
    }

    #[test]
    fn zero_len_arena() {
        let a: PortArena<u64> = PortArena::new(0);
        assert!(a.is_empty());
        assert_eq!(a.count_present(), 0);
        assert_eq!(a.iter_present().count(), 0);
    }
}
