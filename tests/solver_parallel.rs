//! Differential suite for the parallel solver recursion through the
//! unified [`Runtime`] facade: running the Theorem 4.1 solver on every
//! engine arm — barrier, barrier-free async, and sharded alike — at 1/2/4
//! worker threads (and 2/4 shards) must be observationally identical to
//! the serial recursion — same colors, same cost tree (round counts and
//! structure), same merged `SolveStats`, same message totals — on every
//! scenario. Plus the structured error paths: depth overruns and residual
//! slack shortfalls surface as values, never panics, on every engine.

use deco::core_alg::instance;
use deco::core_alg::solver::{
    solve_pipeline, solve_two_delta_minus_one, SolveError, Solver, SolverConfig,
};
use deco::engine::{EngineMode, GraphSpec, IdFlavor, ParallelExecutor, Scenario, ShardedExecutor};
use deco::graph::{generators, Graph};
use deco::Runtime;

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

fn ids(g: &Graph) -> Vec<u64> {
    (1..=g.num_nodes() as u64).collect()
}

/// The four-way lineup as runtimes: barrier and async engines at each
/// pinned thread count, the sharded engine at each shard ×
/// threads-per-shard cell (the solver's protocol executions and branch
/// fan-outs both route through the runtime), plus the env-pinned runtime
/// (`DECO_ENGINE_THREADS` × `DECO_ENGINE_ASYNC` × `DECO_ENGINE_SHARDS`).
/// Labels are the runtimes' own stable descriptors.
fn runtime_lineup() -> Vec<(String, Runtime)> {
    let mut runtimes: Vec<Runtime> = Vec::new();
    for &t in &THREAD_COUNTS {
        runtimes.push(Runtime::from(ParallelExecutor::with_threads(t)));
        runtimes.push(Runtime::from(
            ParallelExecutor::with_threads(t).with_mode(EngineMode::Async),
        ));
    }
    for (s, t) in [(2, 1), (4, 2)] {
        runtimes.push(Runtime::from(
            ShardedExecutor::new(s).with_threads_per_shard(t),
        ));
    }
    runtimes.push(Runtime::from_env().expect("engine env vars parse"));
    runtimes
        .into_iter()
        .map(|rt| (rt.descriptor(), rt))
        .collect()
}

/// Solves `g` on the serial runtime and on every engine of the lineup and
/// demands identical observables.
fn differential(name: &str, g: &Graph, cfg: SolverConfig) {
    let node_ids = ids(g);
    let serial =
        solve_two_delta_minus_one(g, &node_ids, cfg, &Runtime::serial()).expect("serial solves");
    assert_eq!(serial.engine_descriptor, "serial");
    for (label, rt) in runtime_lineup() {
        let par =
            solve_two_delta_minus_one(g, &node_ids, cfg, &rt).expect("parallel solver succeeds");
        assert_eq!(serial.colors, par.colors, "[{name} {label}] colors diverge");
        assert_eq!(serial.cost, par.cost, "[{name} {label}] cost trees diverge");
        assert_eq!(
            serial.solve_stats, par.solve_stats,
            "[{name} {label}] merged stats diverge"
        );
        assert_eq!(
            serial.messages, par.messages,
            "[{name} {label}] message totals diverge"
        );
        assert_eq!(
            serial.x_rounds, par.x_rounds,
            "[{name} {label}] pipeline rounds diverge"
        );
        assert_eq!(
            serial.rounds, par.rounds,
            "[{name} {label}] charged round totals diverge"
        );
        assert_eq!(par.engine_descriptor, label, "report attribution");
    }
}

#[test]
fn scenario_matrix_families_match_serial() {
    // One representative of every family the scenario matrix exercises,
    // sized so default-config solves stay fast but non-trivial.
    let specs = [
        GraphSpec::RandomRegular { n: 100, d: 8 },
        GraphSpec::RandomRegular { n: 60, d: 14 },
        GraphSpec::Gnp { n: 90, p: 0.1 },
        GraphSpec::PowerLaw { n: 120 },
        GraphSpec::TwoClusters { n: 30, d: 4 },
        GraphSpec::ManySmallComponents {
            components: 10,
            max_size: 6,
        },
        GraphSpec::Complete { n: 13 },
        GraphSpec::Cycle { n: 150 },
        GraphSpec::Path { n: 40 },
    ];
    for (i, spec) in specs.into_iter().enumerate() {
        let scenario = Scenario::new(spec, IdFlavor::Shuffled, 5 + i as u64);
        let g = scenario.graph();
        differential(&scenario.name, &g, SolverConfig::default());
    }
}

#[test]
fn strategies_and_faithful_parameters_match_serial() {
    use deco::core_alg::solver::Strategy;
    let g = generators::random_regular(48, 8, 21);
    for (name, cfg) in [
        ("faithful", SolverConfig::faithful(1.0)),
        (
            "kuhn20",
            SolverConfig {
                strategy: Strategy::Kuhn20,
                ..SolverConfig::default()
            },
        ),
        (
            "constant-p3",
            SolverConfig {
                strategy: Strategy::ConstantP(3),
                ..SolverConfig::default()
            },
        ),
    ] {
        differential(name, &g, cfg);
    }
}

#[test]
fn list_instance_pipeline_matches_serial() {
    let g = generators::random_regular(40, 8, 33);
    let inst = instance::random_deg_plus_one(&g, 3 * g.max_edge_degree() as u32, 7);
    let node_ids = ids(&g);
    let serial = solve_pipeline(
        &g,
        inst.clone(),
        &node_ids,
        SolverConfig::default(),
        &Runtime::serial(),
    )
    .expect("serial solves");
    for (label, rt) in runtime_lineup() {
        let par = solve_pipeline(&g, inst.clone(), &node_ids, SolverConfig::default(), &rt)
            .expect("parallel solves");
        assert_eq!(serial.colors, par.colors, "{label}");
        assert_eq!(serial.cost, par.cost, "{label}");
        assert_eq!(serial.solve_stats, par.solve_stats, "{label}");
        assert_eq!(serial.messages, par.messages, "{label}");
        inst.check_solution(&par.colors).expect("valid coloring");
    }
}

#[test]
fn depth_exceeded_is_an_error_on_every_engine() {
    let g = generators::random_regular(40, 6, 9);
    let cfg = SolverConfig {
        max_depth: 1,
        ..SolverConfig::default()
    };
    let node_ids = ids(&g);
    let serial_err = solve_two_delta_minus_one(&g, &node_ids, cfg, &Runtime::serial()).unwrap_err();
    assert_eq!(serial_err, SolveError::DepthExceeded { depth: 1, limit: 1 });
    for (label, rt) in runtime_lineup() {
        let par_err = solve_two_delta_minus_one(&g, &node_ids, cfg, &rt).unwrap_err();
        assert_eq!(serial_err, par_err, "errors diverge at {label}");
    }
}

#[test]
fn overclaimed_slack_falls_back_identically_on_every_engine() {
    // Tight (deg+1)-lists over a huge palette + a wildly overclaimed slack:
    // the Lemma 4.3 residuals lose feasibility, and every engine must
    // degrade to the slack-1 path with identical output and fallback count.
    let g = generators::random_regular(36, 12, 7);
    let inst = instance::random_deg_plus_one(&g, 6000, 8);
    let node_ids = ids(&g);
    let x =
        deco::algos::edge_adapter::linial_edge_coloring(&g, &node_ids, &Runtime::serial()).unwrap();
    let xc: Vec<u32> = g.edges().map(|e| x.coloring.get(e).unwrap()).collect();
    let cfg = SolverConfig {
        beta_cap: None,
        p_cap: None,
        small_palette: 8,
        base_dbar: 6,
        ..SolverConfig::default()
    };
    let serial = Solver::new(cfg)
        .solve_slack_instance(&inst, &xc, x.palette as u32, 1e6)
        .expect("fallback keeps the solve alive");
    assert!(serial.stats.slack_fallbacks > 0, "{:?}", serial.stats);
    inst.check_solution(&deco::graph::coloring::EdgeColoring::from_complete(
        serial.colors.clone(),
    ))
    .expect("valid despite fallback");
    for (label, rt) in runtime_lineup() {
        let par = Solver::with_runtime(cfg, rt)
            .solve_slack_instance(&inst, &xc, x.palette as u32, 1e6)
            .expect("fallback keeps the solve alive");
        assert_eq!(serial.colors, par.colors, "{label}");
        assert_eq!(serial.cost, par.cost, "{label}");
        assert_eq!(serial.stats, par.stats, "{label}");
    }
}

#[test]
fn shard_failures_convert_into_structured_solve_errors() {
    // Pins the bridge between the framed engine's hardening and the solver
    // error surface: a ShardFailed converts into SolveError::ShardFailed
    // with the shard index and cause preserved, stays a plain Copy value,
    // and renders the same human-readable cause.
    use deco::engine::shard::framed::{ShardFailed, ShardFailure};
    let failed = ShardFailed {
        shard: 3,
        cause: ShardFailure::Timeout { budget_ms: 250 },
    };
    let err: SolveError = failed.into();
    assert_eq!(
        err,
        SolveError::ShardFailed {
            shard: 3,
            cause: ShardFailure::Timeout { budget_ms: 250 },
        }
    );
    assert_eq!(
        err.to_string(),
        "shard 3 failed: no response within the 250 ms frame budget"
    );
    for cause in [ShardFailure::Disconnected, ShardFailure::Malformed] {
        let e: SolveError = ShardFailed { shard: 0, cause }.into();
        assert_eq!(e, SolveError::ShardFailed { shard: 0, cause });
    }
}
