//! Dynamic-graph invariants through the facade: update inverses restore
//! the full CSR digest bit for bit, and replayed churn traces produce
//! identical `UpdateReport` sequences on every engine arm.

use deco::core_alg::solver::SolverConfig;
use deco::engine::{EngineMode, ParallelExecutor, ShardedExecutor};
use deco::graph::coloring::check_edge_coloring;
use deco::graph::{generators, Graph, MutableGraph, NodeId};
use deco::{EdgeUpdate, Runtime, Session};

/// Everything CSR: edge list, per-port adjacency (neighbor and edge id per
/// port), and the back-port mirror table. Two graphs with equal digests are
/// indistinguishable to every engine.
type Digest = (Vec<[u32; 2]>, Vec<Vec<(u32, u32)>>, Vec<Vec<u32>>);

fn digest(g: &Graph) -> Digest {
    let edges = g.edge_list().iter().map(|[u, v]| [u.0, v.0]).collect();
    let adjacency = g
        .nodes()
        .map(|v| {
            g.adjacent(v)
                .iter()
                .map(|a| (a.neighbor.0, a.edge.0))
                .collect()
        })
        .collect();
    let back_ports = g.nodes().map(|v| g.back_ports(v).to_vec()).collect();
    (edges, adjacency, back_ports)
}

fn ids(g: &Graph) -> Vec<u64> {
    (1..=g.num_nodes() as u64).collect()
}

/// Splitmix-style step for seeded trace generation without pulling a full
/// RNG into the property loop.
fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 16
}

/// A seeded toggle trace over `n` nodes: each step picks a pair and flips
/// its existence against the mirror, so the trace is valid by construction.
fn toggle_trace(base: &Graph, len: usize, seed: u64) -> Vec<EdgeUpdate> {
    let n = base.num_nodes();
    let mut mirror = MutableGraph::from_graph(base);
    let mut state = seed;
    let mut trace = Vec::with_capacity(len);
    while trace.len() < len {
        let u = (lcg(&mut state) % n as u64) as u32;
        let v = (lcg(&mut state) % n as u64) as u32;
        if u == v {
            continue;
        }
        let (u, v) = (NodeId(u), NodeId(v));
        let up = if mirror.has_edge(u, v) {
            EdgeUpdate::remove(u, v)
        } else {
            EdgeUpdate::insert(u, v)
        };
        mirror.apply(up).expect("toggle traces are valid");
        trace.push(up);
    }
    trace
}

#[test]
fn insert_then_remove_restores_the_full_csr_digest() {
    // Seeded property loop over several families: for a batch of non-edges
    // e, remove_edge(insert_edge(G, e), e) must restore the digest exactly —
    // adjacency port order and back-port mirrors included.
    for (g, seed) in [
        (generators::gnp(26, 0.15, 3), 11u64),
        (generators::random_regular(24, 4, 5), 12),
        (generators::cycle(17), 13),
        (generators::star(7), 14),
    ] {
        let before = digest(&g);
        let mut m = MutableGraph::from_graph(&g);
        let n = g.num_nodes() as u64;
        let mut state = seed;
        let mut checked = 0;
        while checked < 25 {
            let u = NodeId((lcg(&mut state) % n) as u32);
            let v = NodeId((lcg(&mut state) % n) as u32);
            if u == v || m.has_edge(u, v) {
                continue;
            }
            let e = EdgeUpdate::insert(u, v);
            m.apply(e).expect("non-edge inserts");
            assert_ne!(digest(&m.to_graph()), before, "insert must be visible");
            m.apply(e.inverse()).expect("fresh edge removes");
            assert_eq!(
                digest(&m.to_graph()),
                before,
                "insert∘remove must be the identity on the CSR digest"
            );
            checked += 1;
        }
    }
}

#[test]
fn reversed_traces_unwind_to_the_original_edge_set() {
    // The batch generalization: replay a whole toggle trace, then its
    // inverses in reverse order. Removal uses swap_remove, so a long trace
    // may permute edge enumeration order — the guarantee here is the edge
    // *set* (and hence every degree), not CSR slot assignment. The exact
    // full-digest identity for a single insert∘remove is covered above.
    let canon = |g: &Graph| {
        let mut edges: Vec<[u32; 2]> = g.edge_list().iter().map(|[u, v]| [u.0, v.0]).collect();
        edges.sort_unstable();
        edges
    };
    let g = generators::gnp(20, 0.2, 9);
    let before = canon(&g);
    let mut m = MutableGraph::from_graph(&g);
    let trace = toggle_trace(&g, 60, 0xDEC0);
    for &up in &trace {
        m.apply(up).expect("trace is valid");
    }
    for &up in trace.iter().rev() {
        m.apply(up.inverse()).expect("inverse trace is valid");
    }
    assert_eq!(canon(&m.to_graph()), before);
    assert_eq!(m.num_edges(), before.len());
}

/// The engine lineup sessions replay on: every engine arm of the runtime.
fn runtime_lineup() -> Vec<(String, Runtime)> {
    let runtimes = vec![
        Runtime::serial(),
        Runtime::from(ParallelExecutor::with_threads(2)),
        Runtime::from(ParallelExecutor::with_threads(2).with_mode(EngineMode::Async)),
        Runtime::from(ShardedExecutor::new(2)),
    ];
    runtimes
        .into_iter()
        .map(|rt| (rt.descriptor(), rt))
        .collect()
}

#[test]
fn replayed_traces_report_identically_on_every_engine() {
    let g = generators::random_regular(28, 4, 41);
    let node_ids = ids(&g);
    let trace = toggle_trace(&g, 40, 0xC0FFEE);

    let replay = |rt: &Runtime| {
        let mut session =
            Session::open(&g, &node_ids, SolverConfig::default(), rt).expect("base solve succeeds");
        let observables: Vec<_> = trace
            .iter()
            .map(|&up| {
                session
                    .apply(up)
                    .expect("repair succeeds at the true bound")
                    .observables()
            })
            .collect();
        let report = session.report();
        (observables, report)
    };

    let (serial_obs, serial_report) = replay(&Runtime::serial());
    // The final coloring is proper on the final snapshot.
    let mut final_graph = MutableGraph::from_graph(&g);
    for &up in &trace {
        final_graph.apply(up).unwrap();
    }
    let final_snapshot = final_graph.to_graph();
    check_edge_coloring(&final_snapshot, &serial_report.colors).expect("proper after the trace");

    for (label, rt) in runtime_lineup() {
        // Twice on each engine: replay determinism within an engine…
        let (first, first_report) = replay(&rt);
        let (second, second_report) = replay(&rt);
        assert_eq!(first, second, "[{label}] replays diverge");
        assert_eq!(
            first_report.colors, second_report.colors,
            "[{label}] colors diverge between replays"
        );
        // …and against the serial reference across engines.
        assert_eq!(first, serial_obs, "[{label}] diverges from serial");
        assert_eq!(
            first_report.colors, serial_report.colors,
            "[{label}] final coloring diverges from serial"
        );
        assert_eq!(
            first_report.rounds, serial_report.rounds,
            "[{label}] charged rounds diverge from serial"
        );
        assert_eq!(
            first_report.messages, serial_report.messages,
            "[{label}] message totals diverge from serial"
        );
    }
}

#[test]
fn one_shot_solve_is_the_zero_update_session() {
    use deco::core_alg::solver::solve_two_delta_minus_one;
    let g = generators::random_regular(20, 4, 77);
    let node_ids = ids(&g);
    let rt = Runtime::serial();
    let one_shot = solve_two_delta_minus_one(&g, &node_ids, SolverConfig::default(), &rt).unwrap();
    let mut session = Session::open(&g, &node_ids, SolverConfig::default(), &rt).unwrap();
    let report = session.report();
    assert_eq!(one_shot.colors, report.colors);
    assert_eq!(one_shot.rounds, report.rounds);
    assert_eq!(one_shot.messages, report.messages);
    assert_eq!(one_shot.cost, report.cost);
}
