//! Property-based tests on the core invariants, driven by seeded random
//! graphs, lists, and partitions.
//!
//! Hand-rolled property loops instead of the `proptest` crate (unavailable
//! offline): each property runs a fixed number of cases derived from a
//! deterministic master RNG, so failures are exactly reproducible — the
//! failing case prints its seed, and rerunning hits the same case.

use deco::core_alg::defective::{defect_bound, defective_edge_coloring, defective_palette};
use deco::core_alg::instance;
use deco::core_alg::lists::{lemma44_witness, level_of, ColorList, SubspacePartition};
use deco::core_alg::solver::{solve_pipeline, SolverConfig};
use deco::graph::{coloring, generators, Graph};
use deco::local::math::harmonic;
use deco::Runtime;
use rand::prelude::*;

const CASES: u64 = 48;

/// Random simple graph: G(n, m) with bounded size, seeded per case.
fn arb_graph(rng: &mut StdRng) -> Graph {
    let n = rng.gen_range(3..40usize);
    let max_m = n * (n - 1) / 2;
    let m = rng.gen_range(0..(2 * n)).min(max_m);
    generators::gnm(n, m, rng.gen_range(0..u64::MAX))
}

/// Runs `body` for `CASES` deterministic cases, labelling failures by case
/// seed.
fn for_cases(master_seed: u64, body: impl Fn(u64, &mut StdRng)) {
    for case in 0..CASES {
        let case_seed = master_seed ^ (case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut rng = StdRng::seed_from_u64(case_seed);
        body(case_seed, &mut rng);
    }
}

#[test]
fn solver_always_produces_valid_list_colorings() {
    for_cases(0xDEC0_0001, |case_seed, rng| {
        let g = arb_graph(rng);
        if g.num_edges() == 0 {
            return;
        }
        let seed = rng.gen_range(0..u64::MAX);
        let palette = g.max_edge_degree() as u32 + 1 + (seed % 7) as u32;
        let inst = instance::random_deg_plus_one(&g, palette, seed);
        let ids: Vec<u64> = (1..=g.num_nodes() as u64).collect();
        let res = solve_pipeline(
            &g,
            inst.clone(),
            &ids,
            SolverConfig::default(),
            &Runtime::serial(),
        )
        .expect("solver succeeds");
        assert!(
            inst.check_solution(&res.colors).is_ok(),
            "invalid coloring for case seed {case_seed}"
        );
    });
}

#[test]
fn defective_coloring_respects_bounds() {
    for_cases(0xDEC0_0002, |case_seed, rng| {
        let g = arb_graph(rng);
        if g.num_edges() == 0 {
            return;
        }
        let beta = rng.gen_range(1..5u32);
        // Any proper edge coloring works as the X-coloring; greedy is fine.
        let x = deco::algos::greedy::greedy_edge_coloring(&g, deco::algos::greedy::EdgeOrder::ById);
        let xc: Vec<u32> = g.edges().map(|e| x.get(e).unwrap()).collect();
        let xp = xc.iter().max().unwrap() + 1;
        let d = defective_edge_coloring(&g, beta, &xc, xp.max(2), &Runtime::serial());
        assert!(
            d.colors.iter().all(|&c| c < defective_palette(beta)),
            "palette overflow for case seed {case_seed}"
        );
        let defects = coloring::edge_defects(&g, &d.colors);
        for e in g.edges() {
            assert!(
                defects[e.index()] <= defect_bound(&g, e, beta),
                "defect bound violated at {e} for case seed {case_seed}"
            );
        }
    });
}

#[test]
fn lemma44_holds_for_arbitrary_lists() {
    for_cases(0xDEC0_0003, |case_seed, rng| {
        let len = rng.gen_range(1..200usize);
        let raw: Vec<u32> = (0..len).map(|_| rng.gen_range(0..600u32)).collect();
        let p = rng.gen_range(2..40u32);
        let list = ColorList::new(raw);
        let c = 600u32;
        let p = p.min(c);
        let part = SubspacePartition::new(c, p);
        let (k, idx) = lemma44_witness(&list, &part);
        let hq = harmonic(u64::from(part.num_subspaces()));
        assert_eq!(idx.len(), k, "witness arity for case seed {case_seed}");
        for &i in &idx {
            let (lo, hi) = part.range(i);
            assert!(
                list.count_in_range(lo, hi) as f64 >= list.len() as f64 / (k as f64 * hq) - 1e-9,
                "witness density for case seed {case_seed}"
            );
        }
        // level_of must agree with a direct witness: 2^level indices exist.
        let info = level_of(&list, &part);
        assert!(
            info.indices.len() >= 1usize << info.level,
            "level witness for case seed {case_seed}"
        );
    });
}

#[test]
fn partitions_tile_the_palette() {
    for_cases(0xDEC0_0004, |case_seed, rng| {
        let c = rng.gen_range(2..2000u32);
        let p = rng.gen_range(2..64u32).min(c);
        let part = SubspacePartition::new(c, p);
        assert!(
            part.num_subspaces() <= 2 * p,
            "subspace count for case seed {case_seed}"
        );
        let mut covered = 0u32;
        for i in 0..part.num_subspaces() {
            let (lo, hi) = part.range(i);
            assert_eq!(lo, covered, "gap at subspace {i} for case seed {case_seed}");
            assert!(hi > lo, "empty subspace {i} for case seed {case_seed}");
            covered = hi;
        }
        assert_eq!(covered, c, "partition must tile for case seed {case_seed}");
        // subspace_of is the inverse of range.
        for color in [0, c / 3, c / 2, c - 1] {
            let i = part.subspace_of(color);
            let (lo, hi) = part.range(i);
            assert!(
                lo <= color && color < hi,
                "inverse lookup for case seed {case_seed}"
            );
        }
    });
}

#[test]
fn greedy_list_coloring_never_fails_on_deg_plus_one() {
    for_cases(0xDEC0_0005, |case_seed, rng| {
        let g = arb_graph(rng);
        if g.num_edges() == 0 {
            return;
        }
        let seed = rng.gen_range(0..u64::MAX);
        let inst = instance::random_deg_plus_one(&g, g.max_edge_degree() as u32 + 2, seed);
        let lists: Vec<Vec<u32>> = inst.lists().iter().map(|l| l.as_slice().to_vec()).collect();
        let res = deco::algos::greedy::greedy_list_edge_coloring(
            &g,
            &lists,
            deco::algos::greedy::EdgeOrder::Random(seed),
        );
        assert!(res.is_ok(), "greedy failed for case seed {case_seed}");
    });
}

#[test]
fn edge_coloring_validators_agree_with_defects() {
    for_cases(0xDEC0_0006, |case_seed, rng| {
        let g = arb_graph(rng);
        if g.num_edges() == 0 {
            return;
        }
        let seed = rng.gen_range(0..u64::MAX);
        // A random (possibly improper) coloring: checker errors iff some
        // defect is positive.
        let colors: Vec<u32> = (0..g.num_edges())
            .map(|i| ((seed >> (i % 48)) % 4) as u32)
            .collect();
        let defects = coloring::edge_defects(&g, &colors);
        let proper =
            coloring::check_edge_coloring(&g, &coloring::EdgeColoring::from_complete(colors));
        assert_eq!(
            proper.is_ok(),
            defects.iter().all(|&d| d == 0),
            "validators disagree for case seed {case_seed}"
        );
    });
}
