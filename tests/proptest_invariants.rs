//! Property-based tests on the core invariants, with proptest-driven
//! random graphs, lists, and partitions.

use deco::core_alg::defective::{defect_bound, defective_edge_coloring, defective_palette};
use deco::core_alg::instance;
use deco::core_alg::lists::{lemma44_witness, level_of, ColorList, SubspacePartition};
use deco::core_alg::solver::{solve_pipeline, SolverConfig};
use deco::graph::{coloring, generators, Graph};
use deco::local::math::harmonic;
use proptest::prelude::*;

/// Random simple graph strategy: G(n, m) with bounded size.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (3usize..40, any::<u64>()).prop_map(|(n, seed)| {
        let max_m = n * (n - 1) / 2;
        let m = (seed as usize % (2 * n)).min(max_m);
        generators::gnm(n, m, seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn solver_always_produces_valid_list_colorings(g in arb_graph(), seed in any::<u64>()) {
        prop_assume!(g.num_edges() > 0);
        let palette = g.max_edge_degree() as u32 + 1 + (seed % 7) as u32;
        let inst = instance::random_deg_plus_one(&g, palette, seed);
        let ids: Vec<u64> = (1..=g.num_nodes() as u64).collect();
        let res = solve_pipeline(&g, inst.clone(), &ids, SolverConfig::default());
        prop_assert!(inst.check_solution(&res.coloring).is_ok());
    }

    #[test]
    fn defective_coloring_respects_bounds(g in arb_graph(), beta in 1u32..5) {
        prop_assume!(g.num_edges() > 0);
        // Any proper edge coloring works as the X-coloring; greedy is fine.
        let x = deco::algos::greedy::greedy_edge_coloring(
            &g, deco::algos::greedy::EdgeOrder::ById);
        let xc: Vec<u32> = g.edges().map(|e| x.get(e).unwrap()).collect();
        let xp = xc.iter().max().unwrap() + 1;
        let d = defective_edge_coloring(&g, beta, &xc, xp.max(2));
        prop_assert!(d.colors.iter().all(|&c| c < defective_palette(beta)));
        let defects = coloring::edge_defects(&g, &d.colors);
        for e in g.edges() {
            prop_assert!(defects[e.index()] <= defect_bound(&g, e, beta));
        }
    }

    #[test]
    fn lemma44_holds_for_arbitrary_lists(
        raw in proptest::collection::vec(0u32..600, 1..200),
        p in 2u32..40,
    ) {
        let list = ColorList::new(raw);
        let c = 600u32;
        let p = p.min(c);
        let part = SubspacePartition::new(c, p);
        let (k, idx) = lemma44_witness(&list, &part);
        let hq = harmonic(u64::from(part.num_subspaces()));
        prop_assert_eq!(idx.len(), k);
        for &i in &idx {
            let (lo, hi) = part.range(i);
            prop_assert!(
                list.count_in_range(lo, hi) as f64 >= list.len() as f64 / (k as f64 * hq) - 1e-9
            );
        }
        // level_of must agree with a direct witness: 2^level indices exist.
        let info = level_of(&list, &part);
        prop_assert!(info.indices.len() >= 1usize << info.level);
    }

    #[test]
    fn partitions_tile_the_palette(c in 2u32..2000, p_raw in 2u32..64) {
        let p = p_raw.min(c);
        let part = SubspacePartition::new(c, p);
        prop_assert!(part.num_subspaces() <= 2 * p);
        let mut covered = 0u32;
        for i in 0..part.num_subspaces() {
            let (lo, hi) = part.range(i);
            prop_assert_eq!(lo, covered);
            prop_assert!(hi > lo);
            covered = hi;
        }
        prop_assert_eq!(covered, c);
        // subspace_of is the inverse of range.
        for color in [0, c / 3, c / 2, c - 1] {
            let i = part.subspace_of(color);
            let (lo, hi) = part.range(i);
            prop_assert!(lo <= color && color < hi);
        }
    }

    #[test]
    fn greedy_list_coloring_never_fails_on_deg_plus_one(g in arb_graph(), seed in any::<u64>()) {
        prop_assume!(g.num_edges() > 0);
        let inst = instance::random_deg_plus_one(&g, g.max_edge_degree() as u32 + 2, seed);
        let lists: Vec<Vec<u32>> =
            inst.lists().iter().map(|l| l.as_slice().to_vec()).collect();
        let res = deco::algos::greedy::greedy_list_edge_coloring(
            &g, &lists, deco::algos::greedy::EdgeOrder::Random(seed));
        prop_assert!(res.is_ok());
    }

    #[test]
    fn edge_coloring_validators_agree_with_defects(g in arb_graph(), seed in any::<u64>()) {
        prop_assume!(g.num_edges() > 0);
        // A random (possibly improper) coloring: checker errors iff some
        // defect is positive.
        let colors: Vec<u32> = (0..g.num_edges()).map(|i| {
            ((seed >> (i % 48)) % 4) as u32
        }).collect();
        let defects = coloring::edge_defects(&g, &colors);
        let proper = coloring::check_edge_coloring(
            &g,
            &coloring::EdgeColoring::from_complete(colors),
        );
        prop_assert_eq!(proper.is_ok(), defects.iter().all(|&d| d == 0));
    }
}
