//! Operational locality verification: a `T`-round LOCAL algorithm's output
//! at `v` is a function of the radius-`T` ball around `v`. We perturb the
//! graph strictly outside the ball and demand unchanged outputs.

use deco::algos::{deg2, linial};
use deco::graph::{generators, NodeId};
use deco::local::locality::check_locality;
use deco::local::Network;
use deco::Runtime;

#[test]
fn linial_is_local_at_its_schedule_radius() {
    // Radius = number of reduction rounds; on a long cycle there is plenty
    // of "far away" graph to perturb.
    let g = generators::cycle(120);
    let ids: Vec<u64> = (1..=120).collect();
    let rounds = {
        let net = Network::with_ids(&g, ids.clone());
        linial::color_from_ids(&net, &Runtime::serial())
            .expect("terminates")
            .rounds
    };
    let victims = [NodeId(0), NodeId(30), NodeId(60)];
    check_locality(&g, &ids, rounds as usize, &victims, 6, |g, ids| {
        let net = Network::with_ids(g, ids.to_vec());
        linial::color_from_ids(&net, &Runtime::serial())
            .expect("terminates")
            .colors
    })
    .expect("Linial must be T-local");
}

#[test]
fn deg2_three_coloring_is_local() {
    let g = generators::cycle(200);
    let ids: Vec<u64> = (1..=200).collect();
    let rounds = {
        let net = Network::with_ids(&g, ids.clone());
        deg2::three_color_max_deg2(&net, ids.clone(), 201, &Runtime::serial())
            .expect("terminates")
            .rounds
    };
    let victims = [NodeId(10), NodeId(100)];
    check_locality(&g, &ids, rounds as usize, &victims, 4, |g, ids| {
        let net = Network::with_ids(g, ids.to_vec());
        deg2::three_color_max_deg2(&net, ids.to_vec(), 201, &Runtime::serial())
            .expect("terminates")
            .colors
    })
    .expect("deg-2 3-coloring must be T-local");
}

#[test]
fn non_local_function_is_rejected_by_checker() {
    // Negative control: "number of edges in the graph" is global.
    let g = generators::cycle(60);
    let ids: Vec<u64> = (1..=60).collect();
    let err = check_locality(&g, &ids, 2, &[NodeId(0)], 8, |g, _| {
        vec![g.num_edges(); g.num_nodes()]
    });
    assert!(
        err.is_err(),
        "global functions must fail the locality check"
    );
}
