//! Differential suite for the trace layer's observational neutrality: the
//! same pipeline run with tracing off and with tracing on (JSONL sink) on
//! every engine arm must produce byte-identical observables — same colors,
//! same rounds, same message totals. With tracing on, `RunReport.metrics`
//! must be populated (pipeline span present, the traced `messages` counter
//! equal to `RunReport.messages`) and every line of the JSONL file must
//! parse back into the event enum. Runs as its own process, so installing
//! sinks here cannot race with other test binaries; the test fns serialize
//! on a local mutex because the dispatch is process-global.

use deco::core_alg::solver::{solve_two_delta_minus_one, RunReport, SolverConfig};
use deco::engine::{EngineMode, GraphSpec, IdFlavor, ParallelExecutor, Scenario, ShardedExecutor};
use deco::graph::Graph;
use deco::trace::{Counter, Phase, TraceConfig, TraceEvent};
use deco::Runtime;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};

/// The dispatch is process-global; every test fn takes this first.
fn guard() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn ids(g: &Graph) -> Vec<u64> {
    (1..=g.num_nodes() as u64).collect()
}

/// The four engine arms: serial reference, barrier, barrier-free async,
/// sharded.
fn lineup() -> Vec<(&'static str, Runtime)> {
    vec![
        ("serial", Runtime::serial()),
        (
            "barrier(t=2)",
            Runtime::from(ParallelExecutor::with_threads(2)),
        ),
        (
            "async(t=2)",
            Runtime::from(ParallelExecutor::with_threads(2).with_mode(EngineMode::Async)),
        ),
        ("sharded(s=2)", Runtime::from(ShardedExecutor::new(2))),
    ]
}

fn solve(rt: &Runtime, g: &Graph, node_ids: &[u64]) -> RunReport {
    solve_two_delta_minus_one(g, node_ids, SolverConfig::default(), rt).expect("solver succeeds")
}

fn temp_trace_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "deco-trace-diff-{tag}-{}.jsonl",
        std::process::id()
    ))
}

#[test]
fn tracing_on_is_observationally_invisible_on_every_engine() {
    let _g = guard();
    let g = Scenario::new(
        GraphSpec::RandomRegular { n: 96, d: 8 },
        IdFlavor::Shuffled,
        5,
    )
    .graph();
    let node_ids = ids(&g);

    // Leg 1: tracing off — the zero-cost path; no metrics in the report.
    deco::trace::install(TraceConfig::off()).unwrap();
    let baselines: Vec<(&str, RunReport)> = lineup()
        .into_iter()
        .map(|(name, rt)| (name, solve(&rt, &g, &node_ids)))
        .collect();
    for (name, report) in &baselines {
        assert!(
            report.metrics.is_none(),
            "{name}: tracing off must leave RunReport.metrics empty"
        );
    }

    // Leg 2: tracing on (JSONL) — observables byte-identical, metrics
    // populated, every emitted line parseable.
    for ((name, rt), (_, baseline)) in lineup().into_iter().zip(&baselines) {
        let path = temp_trace_path(name.split('(').next().unwrap());
        deco::trace::install(TraceConfig::jsonl(&path)).unwrap();
        let traced = solve(&rt, &g, &node_ids);
        deco::trace::install(TraceConfig::off()).unwrap();

        assert_eq!(baseline.colors, traced.colors, "{name}: colors diverge");
        assert_eq!(baseline.rounds, traced.rounds, "{name}: rounds diverge");
        assert_eq!(
            baseline.messages, traced.messages,
            "{name}: messages diverge"
        );
        assert_eq!(
            baseline.solve_stats, traced.solve_stats,
            "{name}: solve stats diverge"
        );

        let metrics = traced
            .metrics
            .as_ref()
            .unwrap_or_else(|| panic!("{name}: tracing on must populate RunReport.metrics"));
        assert!(
            metrics.phase(Phase::Pipeline).is_some(),
            "{name}: pipeline span missing"
        );
        // Every engine emits exactly one messages count per protocol
        // execution, and the pipeline's message total is the sum of its
        // executions — so the traced counter reproduces the report total.
        assert_eq!(
            metrics.counter(Counter::Messages),
            Some(traced.messages),
            "{name}: traced message total must match RunReport.messages"
        );
        // Rounds are counted per engine execution; the report's round
        // total is pipeline-level (x_rounds + the cost tree), so the
        // traced counter is present but intentionally not equal to it.
        assert!(
            metrics.counter(Counter::Rounds).is_some(),
            "{name}: traced round counter missing"
        );

        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{name}: trace file unreadable: {e}"));
        assert!(!text.is_empty(), "{name}: trace file is empty");
        for (idx, line) in text.lines().enumerate() {
            TraceEvent::from_jsonl(line)
                .unwrap_or_else(|e| panic!("{name}: line {} does not parse: {e}\n{line}", idx + 1));
        }
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn ring_mode_matches_jsonl_mode_observables() {
    let _g = guard();
    let g = Scenario::new(GraphSpec::Gnp { n: 60, p: 0.1 }, IdFlavor::Shuffled, 9).graph();
    let node_ids = ids(&g);
    let rt = Runtime::from(ParallelExecutor::with_threads(2));

    deco::trace::install(TraceConfig::off()).unwrap();
    let off = solve(&rt, &g, &node_ids);

    deco::trace::install(TraceConfig::ring()).unwrap();
    let ring = solve(&rt, &g, &node_ids);
    deco::trace::install(TraceConfig::off()).unwrap();

    assert_eq!(off.colors, ring.colors);
    assert_eq!(off.rounds, ring.rounds);
    assert_eq!(off.messages, ring.messages);
    let metrics = ring.metrics.expect("ring mode populates metrics");
    assert_eq!(metrics.counter(Counter::Messages), Some(ring.messages));
}
