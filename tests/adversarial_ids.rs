//! The LOCAL model grants adversarial unique IDs from an `n^{O(1)}` space;
//! correctness must not depend on the friendly sequential assignment.

use deco::algos::{deg2, linial};
use deco::core_alg::solver::{solve_two_delta_minus_one, SolverConfig};
use deco::graph::{coloring, generators};
use deco::local::{IdAssignment, Network};
use deco::Runtime;

fn rt() -> Runtime {
    Runtime::serial()
}

const ASSIGNMENTS: [IdAssignment; 4] = [
    IdAssignment::Sequential,
    IdAssignment::Reversed,
    IdAssignment::Shuffled(77),
    IdAssignment::SparseRandom(78),
];

#[test]
fn linial_under_adversarial_ids() {
    let g = generators::random_regular(80, 7, 1);
    for assignment in ASSIGNMENTS {
        let net = Network::new(&g, assignment);
        let res = linial::color_from_ids(&net, &rt()).expect("terminates");
        coloring::check_vertex_coloring(&g, &res.colors).expect("proper");
        // Sparse ids enlarge the schedule by at most a couple of rounds.
        assert!(
            res.rounds <= 8,
            "rounds {} too large for {assignment:?}",
            res.rounds
        );
    }
}

#[test]
fn deg2_under_adversarial_ids() {
    let g = generators::disjoint_union(&[generators::cycle(33), generators::path(20)]);
    for assignment in ASSIGNMENTS {
        let net = Network::new(&g, assignment);
        let initial = net.ids().to_vec();
        let m0 = net.max_id() + 1;
        let res = deg2::three_color_max_deg2(&net, initial, m0, &rt()).expect("terminates");
        let as_u32: Vec<u32> = res.colors.iter().map(|&c| u32::from(c)).collect();
        coloring::check_vertex_coloring(&g, &as_u32).expect("proper 3-coloring");
    }
}

#[test]
fn solver_under_adversarial_ids() {
    let g = generators::random_regular(60, 9, 3);
    for assignment in ASSIGNMENTS {
        let net = Network::new(&g, assignment);
        let ids = net.ids().to_vec();
        let res = solve_two_delta_minus_one(&g, &ids, SolverConfig::default(), &rt())
            .expect("solver succeeds");
        coloring::check_edge_coloring(&g, &res.colors).expect("proper");
        assert!(res.colors.distinct_colors() < 2 * 9);
    }
}

#[test]
fn outputs_depend_only_on_ids_not_assignment_enum() {
    // Two different routes to the same ID vector must give identical output.
    let g = generators::cycle(40);
    let net = Network::new(&g, IdAssignment::Sequential);
    let explicit = Network::with_ids(&g, (1..=40).collect());
    let a = linial::color_from_ids(&net, &rt()).unwrap();
    let b = linial::color_from_ids(&explicit, &rt()).unwrap();
    assert_eq!(a.colors, b.colors);
    assert_eq!(a.rounds, b.rounds);
}

#[test]
fn relabeled_graph_still_solves() {
    // Structure-preserving relabeling with fresh ids: outputs differ but
    // validity is invariant.
    let g = generators::random_regular(50, 6, 5);
    let perm = generators::random_permutation(50, 9);
    let h = generators::relabel(&g, &perm);
    let ids: Vec<u64> = (1..=50).collect();
    let res_g = solve_two_delta_minus_one(&g, &ids, SolverConfig::default(), &rt())
        .expect("solver succeeds");
    let res_h = solve_two_delta_minus_one(&h, &ids, SolverConfig::default(), &rt())
        .expect("solver succeeds");
    coloring::check_edge_coloring(&g, &res_g.colors).expect("proper on g");
    coloring::check_edge_coloring(&h, &res_h.colors).expect("proper on h");
}
