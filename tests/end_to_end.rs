//! End-to-end integration: the full pipeline (Linial initial coloring +
//! Theorem 4.1 solver) across graph families, list shapes, and parameter
//! strategies.

use deco::core_alg::instance;
use deco::core_alg::solver::{solve_pipeline, solve_two_delta_minus_one, SolverConfig, Strategy};
use deco::graph::{generators, Graph};
use deco::Runtime;

fn ids(g: &Graph) -> Vec<u64> {
    (1..=g.num_nodes() as u64).collect()
}

fn check_2d1(g: &Graph, cfg: SolverConfig) {
    let res =
        solve_two_delta_minus_one(g, &ids(g), cfg, &Runtime::serial()).expect("solver succeeds");
    assert!(res.colors.is_complete());
    deco::graph::coloring::check_edge_coloring(g, &res.colors).expect("proper");
    if g.num_edges() > 0 {
        let bound = (2 * g.max_degree() - 1).max(1);
        assert!(
            res.colors.distinct_colors() <= bound,
            "used {} colors > 2Δ−1 = {bound}",
            res.colors.distinct_colors()
        );
    }
}

#[test]
fn family_sweep_default_config() {
    for g in [
        generators::complete(12),
        generators::complete_bipartite(9, 9),
        generators::petersen(),
        generators::torus(8, 8),
        generators::hypercube(5),
        generators::grid(12, 12),
        generators::caterpillar(20, 5),
        generators::binary_tree(6),
        generators::random_regular(100, 9, 1),
        generators::random_regular(64, 21, 2),
        generators::gnp(150, 0.08, 3),
        generators::power_law(200, 2.4, 32.0, 4),
        generators::random_tree(150, 5),
        generators::star(30),
        generators::cycle(97),
    ] {
        check_2d1(&g, SolverConfig::default());
    }
}

#[test]
fn strategy_sweep() {
    let g = generators::random_regular(80, 12, 7);
    for strategy in [
        Strategy::Paper,
        Strategy::Kuhn20,
        Strategy::ConstantP(2),
        Strategy::ConstantP(5),
    ] {
        check_2d1(
            &g,
            SolverConfig {
                strategy,
                ..SolverConfig::default()
            },
        );
    }
}

#[test]
fn faithful_parameters_small_graphs() {
    // Unclamped paper parameters (β = α·log^{4c} Δ̄): rounds charged are
    // enormous, but the executed work must stay proportional to the edges.
    for alpha in [1.0, 4.0] {
        let g = generators::random_regular(48, 10, 9);
        check_2d1(&g, SolverConfig::faithful(alpha));
    }
}

#[test]
fn faithful_rounds_within_scheduled_budget() {
    use deco::core_alg::budget::{BudgetEvaluator, BudgetParams};
    let g = generators::random_regular(60, 12, 11);
    let res = solve_two_delta_minus_one(
        &g,
        &ids(&g),
        SolverConfig::faithful(1.0),
        &Runtime::serial(),
    )
    .expect("solver succeeds");
    let mut ev = BudgetEvaluator::new(BudgetParams::default());
    let budget = ev.t_deg1(g.max_edge_degree() as f64, (2 * g.max_degree() - 1) as f64);
    let actual = res.cost.actual_rounds() as f64;
    assert!(
        actual <= budget,
        "adaptive rounds {actual} must be within the scheduled budget {budget}"
    );
}

#[test]
fn tight_deg_plus_one_lists() {
    // The hardest list shape: exactly deg(e)+1 colors from the tightest
    // shared palette Δ̄+1.
    for seed in 0..5u64 {
        let g = generators::gnp(60, 0.15, seed);
        if g.num_edges() == 0 {
            continue;
        }
        let inst = instance::random_deg_plus_one(&g, g.max_edge_degree() as u32 + 1, seed);
        let res = solve_pipeline(
            &g,
            inst.clone(),
            &ids(&g),
            SolverConfig::default(),
            &Runtime::serial(),
        )
        .expect("solver succeeds");
        inst.check_solution(&res.colors)
            .expect("valid list coloring");
    }
}

#[test]
fn disjoint_unions_and_degenerate_graphs() {
    let g = generators::disjoint_union(&[
        generators::complete(6),
        generators::cycle(11),
        generators::path(2),
        Graph::empty(4),
        generators::star(8),
    ]);
    check_2d1(&g, SolverConfig::default());
    check_2d1(&Graph::empty(1), SolverConfig::default());
    check_2d1(&generators::path(2), SolverConfig::default());
}

#[test]
fn rounds_scale_with_degree_not_n() {
    // Fix Δ, grow n by 16x: adaptive rounds must stay nearly flat (the
    // log* n term); this is the locality promise of the whole construction.
    let r_small = {
        let g = generators::random_regular(64, 6, 13);
        let res =
            solve_two_delta_minus_one(&g, &ids(&g), SolverConfig::default(), &Runtime::serial())
                .expect("solver succeeds");
        res.x_rounds + res.cost.actual_rounds()
    };
    let r_large = {
        let g = generators::random_regular(1024, 6, 14);
        let res =
            solve_two_delta_minus_one(&g, &ids(&g), SolverConfig::default(), &Runtime::serial())
                .expect("solver succeeds");
        res.x_rounds + res.cost.actual_rounds()
    };
    assert!(
        r_large <= r_small * 2 + 10,
        "rounds exploded with n: {r_small} -> {r_large}"
    );
}

#[test]
fn solver_stats_are_coherent() {
    let g = generators::random_regular(80, 14, 15);
    let res = solve_two_delta_minus_one(&g, &ids(&g), SolverConfig::default(), &Runtime::serial())
        .expect("solver succeeds");
    let s = &res.solve_stats;
    assert!(s.sweeps >= 1);
    assert!(s.classes_nonempty <= s.classes_total);
    assert!(s.base_cases >= 1);
    assert!(s.max_depth_seen >= 1);
    assert!(res.cost.actual_rounds() > 0);
}
