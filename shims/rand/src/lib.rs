//! Offline, API-compatible subset of the `rand` crate.
//!
//! This workspace builds in environments with no access to crates.io, so the
//! handful of `rand` APIs the repo uses are reimplemented here and wired in
//! as a path dependency named `rand`. The subset is deliberately tiny:
//!
//! * [`rngs::StdRng`] — a seedable, portable PRNG (xoshiro256++ seeded via
//!   SplitMix64). **Not** the upstream ChaCha12 generator: streams differ
//!   from crates.io `rand`, but they are deterministic per seed and stable
//!   across platforms, which is all the workspace relies on.
//! * [`Rng::gen_range`] over integer and `f64` ranges, [`Rng::gen_bool`].
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//! * [`SeedableRng::seed_from_u64`].
//!
//! Every consumer in the workspace seeds explicitly (there is no
//! `thread_rng`), so determinism is total by construction. If the real
//! `rand` ever becomes available, deleting this shim and pointing the
//! workspace dependency at crates.io is the only change needed (pinned
//! stream regression tests will need their constants refreshed).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (subset: only `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive; integers or
    /// `f64`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability must be in [0,1], got {p}"
        );
        // 53-bit comparison: p == 1.0 maps to 2^53, above every sample.
        let threshold = (p * (1u64 << 53) as f64) as u64;
        (self.next_u64() >> 11) < threshold
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + sample_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo + sample_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_int_range!(u32, u64, usize, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Uniform integer in `0..span` by 128-bit widening multiply (Lemire's
/// method without the rejection step; bias is < 2⁻⁶⁴·span, irrelevant for
/// simulation workloads).
fn sample_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard PRNG: xoshiro256++ (Blackman–Vigna),
    /// seeded from a `u64` via SplitMix64. Deterministic and portable.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling (subset of upstream's trait of the same name).
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates, back to front).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

/// The customary glob-import surface.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..2000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u64 = rng.gen_range(1..=5);
            assert!((1..=5).contains(&y));
            let f: f64 = rng.gen_range(0.0..1.0f64);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_hits_every_value_of_small_ranges() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 6];
        for _ in 0..600 {
            seen[rng.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes_and_balance() {
        let mut rng = StdRng::seed_from_u64(11);
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_500..5_500).contains(&heads), "got {heads} heads");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, (0..50).collect::<Vec<u32>>());
    }

    #[test]
    fn stream_is_pinned() {
        // Platform-stability regression: these exact values must never
        // change, or every seeded workload in the workspace shifts.
        let mut rng = StdRng::seed_from_u64(0);
        let got: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                5987356902031041503,
                7051070477665621255,
                6633766593972829180,
                211316841551650330,
            ]
        );
    }
}
