//! Offline, API-compatible subset of the `criterion` benchmark harness.
//!
//! The workspace builds without access to crates.io, so the bench targets
//! link against this shim instead. It implements exactly the surface the
//! `deco-bench` targets use — [`Criterion`], [`criterion_group!`],
//! [`criterion_main!`], [`BenchmarkId`], benchmark groups, and
//! [`Bencher::iter`] — with a simple measurement loop: warm up, then run
//! batches until a wall-clock budget is spent, and report the mean, minimum,
//! and iteration count per benchmark.
//!
//! It produces honest wall-clock numbers suitable for A/B comparisons within
//! one run (e.g. engine vs serial runner); it does not do outlier analysis
//! or regression tracking. Set `DECO_BENCH_MS` to change the per-benchmark
//! measurement budget (default 300 ms). Set `DECO_BENCH_JSON` to a file
//! path to additionally append one JSON line per benchmark
//! (`{"name":…,"mean_ns":…,"min_ns":…,"iters":…}`) — this is what CI's
//! bench-smoke job uploads as the machine-readable perf artifact.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&name.to_string(), &mut f);
        self
    }
}

/// Parameterized benchmark identifier, mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered from a parameter value alone.
    pub fn from_parameter(p: impl Display) -> BenchmarkId {
        BenchmarkId { id: p.to_string() }
    }

    /// An id with a function name and a parameter value.
    pub fn new(name: impl Display, p: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{name}/{p}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// A named group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's measurement loop is
    /// budget-driven rather than sample-count-driven.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility (throughput annotation is ignored).
    pub fn throughput(&mut self, _elements: u64) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id), &mut f);
        self
    }

    /// Benchmarks `f` with a borrowed input under `id` within this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&format!("{}/{}", self.name, id), &mut |b| f(b, input));
        self
    }

    /// Ends the group (no-op; reports are printed eagerly).
    pub fn finish(self) {}
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `self.iters` times back to back.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn budget() -> Duration {
    let ms = std::env::var("DECO_BENCH_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(300);
    Duration::from_millis(ms)
}

fn run_benchmark(name: &str, f: &mut dyn FnMut(&mut Bencher)) {
    // Warm-up / calibration run.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let once = b.elapsed.max(Duration::from_nanos(1));
    let budget = budget();
    // Batch size: aim for ~10 batches inside the budget.
    let per_batch = (budget.as_nanos() / 10 / once.as_nanos()).clamp(1, 1 << 20) as u64;

    let mut total_iters = 0u64;
    let mut total_time = Duration::ZERO;
    let mut best = once;
    let deadline = Instant::now() + budget;
    while Instant::now() < deadline {
        let mut b = Bencher {
            iters: per_batch,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        total_iters += per_batch;
        total_time += b.elapsed;
        let per_iter = b.elapsed / u32::try_from(per_batch).expect("clamped to 2^20");
        best = best.min(per_iter);
    }
    if total_iters == 0 {
        total_iters = 1;
        total_time = once;
    }
    let mean = total_time / u32::try_from(total_iters.min(u64::from(u32::MAX))).unwrap();
    println!("bench {name:<50} mean {mean:>12?}  min {best:>12?}  ({total_iters} iters)");
    append_json_record(name, mean, best, total_iters);
}

/// Appends one machine-readable record to the `DECO_BENCH_JSON` file (one
/// JSON object per line, so multiple bench binaries can share it). Write
/// failures are reported, not fatal: a broken artifact path must not fail
/// the measurement itself.
fn append_json_record(name: &str, mean: Duration, min: Duration, iters: u64) {
    let Ok(path) = std::env::var("DECO_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    // The only JSON string in the record is the name; escape the two
    // characters that could break it (names are ASCII identifiers today).
    let escaped: String = name
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c => vec![c],
        })
        .collect();
    let line = format!(
        "{{\"name\":\"{escaped}\",\"mean_ns\":{},\"min_ns\":{},\"iters\":{iters}}}\n",
        mean.as_nanos(),
        min.as_nanos(),
    );
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| std::io::Write::write_all(&mut f, line.as_bytes()));
    if let Err(e) = written {
        eprintln!("DECO_BENCH_JSON: cannot append to {path}: {e}");
    }
}

/// Declares a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_and_reports() {
        std::env::set_var("DECO_BENCH_MS", "5");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim-selftest");
        group.sample_size(10);
        let mut calls = 0u64;
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
        assert!(calls > 0);
    }

    #[test]
    fn json_records_append_one_line_per_benchmark() {
        let path = std::env::temp_dir().join(format!(
            "deco-bench-json-selftest-{}.jsonl",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        std::env::set_var("DECO_BENCH_MS", "5");
        std::env::set_var("DECO_BENCH_JSON", &path);
        let mut c = Criterion::default();
        c.bench_function("json-selftest/\"quoted\"", |b| b.iter(|| 1 + 1));
        std::env::remove_var("DECO_BENCH_JSON");
        let contents = std::fs::read_to_string(&path).expect("json file written");
        let _ = std::fs::remove_file(&path);
        let line = contents
            .lines()
            .find(|l| l.contains("json-selftest"))
            .expect("record for this benchmark");
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(line.contains("\"name\":\"json-selftest/\\\"quoted\\\"\""));
        assert!(line.contains("\"mean_ns\":"));
        assert!(line.contains("\"min_ns\":"));
        assert!(line.contains("\"iters\":"));
    }
}
