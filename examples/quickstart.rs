//! Quickstart: color the edges of a random graph with 2Δ−1 colors using the
//! quasi-polylog-in-Δ LOCAL algorithm, and verify the result.
//!
//! Run with: `cargo run --release --example quickstart` (add `-- --small`
//! for a CI-sized instance, or `-- --graph <path>` to color a graph from
//! disk — `.snap` snapshots or edge-list text, e.g. one written by the
//! `graph-snap` tool). Select the engine with the `DECO_ENGINE_*`
//! environment variables — e.g. `DECO_ENGINE_THREADS=4` — or leave them
//! unset for the serial reference engine.

use deco::core_alg::solver::{solve_two_delta_minus_one, SolverConfig};
use deco::graph::generators;

#[path = "util/mod.rs"]
mod util;
use util::{graph_from_args, runtime_or_exit, small};

fn main() {
    let rt = runtime_or_exit();
    // A random 8-regular graph on 500 nodes (120 under --small), unless
    // --graph supplies a workload from disk.
    let n = if small() { 120 } else { 500 };
    let g = graph_from_args().unwrap_or_else(|| generators::random_regular(n, 8, 42));
    let ids: Vec<u64> = (1..=g.num_nodes() as u64).collect();
    println!("graph: {g}");

    // End-to-end pipeline: Linial's O(Δ̄²) initial edge coloring in
    // O(log* n) rounds, then the Balliu–Kuhn–Olivetti solver.
    let result =
        solve_two_delta_minus_one(&g, &ids, SolverConfig::default(), &rt).expect("solver succeeds");

    let bound = 2 * g.max_degree() - 1;
    println!(
        "colored {} edges with {} distinct colors (guarantee: ≤ 2Δ−1 = {bound})",
        g.num_edges(),
        result.colors.distinct_colors(),
    );
    println!(
        "initial X-coloring: {} colors in {} rounds (O(log* n))",
        result.x_palette, result.x_rounds
    );
    println!(
        "solver: {} adaptive LOCAL rounds, {} Lemma-4.2 sweeps, {} base cases",
        result.cost.actual_rounds(),
        result.solve_stats.sweeps,
        result.solve_stats.base_cases,
    );
    println!(
        "run: engine {}, {} total rounds, {} messages, {:?} wall time",
        result.engine_descriptor, result.rounds, result.messages, result.wall_time,
    );

    // The library re-verifies internally, but let's be explicit:
    deco::graph::coloring::check_edge_coloring(&g, &result.colors).expect("proper edge coloring");
    println!("verification: proper edge coloring OK");
}
