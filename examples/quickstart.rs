//! Quickstart: color the edges of a random graph with 2Δ−1 colors using the
//! quasi-polylog-in-Δ LOCAL algorithm, and verify the result.
//!
//! Run with: `cargo run --release --example quickstart`

use deco::core_alg::solver::{solve_two_delta_minus_one, SolverConfig};
use deco::graph::generators;

fn main() {
    // A random 8-regular graph on 500 nodes.
    let g = generators::random_regular(500, 8, 42);
    let ids: Vec<u64> = (1..=g.num_nodes() as u64).collect();
    println!("graph: {g}");

    // End-to-end pipeline: Linial's O(Δ̄²) initial edge coloring in
    // O(log* n) rounds, then the Balliu–Kuhn–Olivetti solver.
    let result =
        solve_two_delta_minus_one(&g, &ids, SolverConfig::default()).expect("solver succeeds");

    let bound = 2 * g.max_degree() - 1;
    println!(
        "colored {} edges with {} distinct colors (guarantee: ≤ 2Δ−1 = {bound})",
        g.num_edges(),
        result.coloring.distinct_colors(),
    );
    println!(
        "initial X-coloring: {} colors in {} rounds (O(log* n))",
        result.x_palette, result.x_rounds
    );
    println!(
        "solver: {} adaptive LOCAL rounds, {} Lemma-4.2 sweeps, {} base cases",
        result.solution.cost.actual_rounds(),
        result.solution.stats.sweeps,
        result.solution.stats.base_cases,
    );

    // The library re-verifies internally, but let's be explicit:
    deco::graph::coloring::check_edge_coloring(&g, &result.coloring).expect("proper edge coloring");
    println!("verification: proper edge coloring OK");
}
