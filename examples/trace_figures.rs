//! Reproduces the paper's Figures 1–4 as DOT files: the Lemma 4.2
//! walkthrough on a small instance (defective classes, per-class coloring,
//! recursion on the residual).
//!
//! Run with: `cargo run --release --example trace_figures`
//! Render with: `neato -Tpng target/figures/fig_stage1_defective.dot -o fig1.png`

#[path = "util/mod.rs"]
mod util;

fn main() {
    let rt = util::runtime_or_exit();
    let report = deco_bench_report(&rt);
    println!("{report}");
}

// The figure walkthrough lives in the bench crate's experiment module; the
// example re-exports it as a runnable binary for convenience.
fn deco_bench_report(rt: &deco::Runtime) -> String {
    deco_bench::experiments::fig_slack_walkthrough::run(rt)
}
