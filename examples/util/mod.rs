//! Shared plumbing for the runnable examples (included via `#[path]`;
//! not an example target itself).

/// The engine comes from the environment (`DECO_ENGINE_*`,
/// `DECO_SHARD_TRANSPORT`); a malformed variable is reported to stderr —
/// naming the variable and the offending value — instead of panicking.
/// The CI `examples-smoke` job asserts this exact behavior (exit code 2,
/// variable name and value in the message).
pub fn runtime_or_exit() -> deco::Runtime {
    match deco::Runtime::from_env() {
        Ok(rt) => rt,
        Err(err) => {
            eprintln!("invalid engine environment: {err}");
            std::process::exit(2);
        }
    }
}

/// `--small` caps the instance size (used by the CI examples-smoke job).
/// Not every example sizes itself (trace_figures is fixed-size), so this
/// is allowed to go unused in any one inclusion.
#[allow(dead_code)]
pub fn small() -> bool {
    std::env::args().any(|a| a == "--small")
}
