//! Shared plumbing for the runnable examples (included via `#[path]`;
//! not an example target itself).

/// The engine comes from the environment (`DECO_ENGINE_*`,
/// `DECO_SHARD_TRANSPORT`); a malformed variable is reported to stderr —
/// naming the variable and the offending value — instead of panicking.
/// The CI `examples-smoke` job asserts this exact behavior (exit code 2,
/// variable name and value in the message).
pub fn runtime_or_exit() -> deco::Runtime {
    match deco::Runtime::from_env() {
        Ok(rt) => rt,
        Err(err) => {
            eprintln!("invalid engine environment: {err}");
            std::process::exit(2);
        }
    }
}

/// `--small` caps the instance size (used by the CI examples-smoke job).
/// Not every example sizes itself (trace_figures is fixed-size), so this
/// is allowed to go unused in any one inclusion.
#[allow(dead_code)]
pub fn small() -> bool {
    std::env::args().any(|a| a == "--small")
}

/// `--serve <addr>`: submit the workload to a running `deco-serve`
/// daemon at `addr` (`tcp:host:port`, `host:port`, or `uds:/path`)
/// instead of solving in-process. A malformed or missing address exits
/// with code 2, like every other bad argument.
#[allow(dead_code)]
pub fn serve_addr() -> Option<deco::serve::ServeAddr> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--serve" {
            let raw = args.next().unwrap_or_else(|| {
                eprintln!("--serve requires an address (tcp:host:port, uds:/path)");
                std::process::exit(2);
            });
            return Some(deco::serve::ServeAddr::parse(&raw).unwrap_or_else(|e| {
                eprintln!("invalid --serve address: {e}");
                std::process::exit(2);
            }));
        }
    }
    None
}

/// Solves `g` through the daemon at `addr` and returns the coloring.
/// The daemon numbers nodes `1..=n` — the same IDs the examples use —
/// so the coloring is bit-identical to an in-process solve on the same
/// engine. Connection or solve failures exit with a message; an example
/// pointed at a dead daemon must not silently fall back to solving
/// locally.
#[allow(dead_code)]
pub fn solve_via_daemon(
    addr: &deco::serve::ServeAddr,
    g: &deco::graph::Graph,
) -> deco::graph::coloring::EdgeColoring {
    let mut client = deco::serve::Client::connect(addr).unwrap_or_else(|e| {
        eprintln!("could not connect to deco-serve at {addr}: {e}");
        std::process::exit(2);
    });
    let report = client
        .solve(deco::serve::GraphSource::from_graph(g), None, false)
        .map_err(|e| e.to_string())
        .and_then(|resp| resp.into_report())
        .unwrap_or_else(|e| {
            eprintln!("daemon solve failed: {e}");
            std::process::exit(2);
        });
    println!(
        "solved by deco-serve at {addr}: engine {}, {} rounds, {} messages",
        report.engine, report.rounds, report.messages
    );
    report.coloring()
}

/// `--graph <path>`: run the example on a graph loaded from disk instead
/// of a generated one. `.snap` files load through the binary snapshot
/// reader (O(read), validated); anything else parses as edge-list text
/// through the streaming `read_edge_list_file` (buffered, never holds the
/// whole file in memory). Load errors exit with a message — a mistyped
/// path must not silently fall back to the generated workload.
#[allow(dead_code)]
pub fn graph_from_args() -> Option<deco::graph::Graph> {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--graph" {
            let path = args.next().unwrap_or_else(|| {
                eprintln!("--graph requires a path");
                std::process::exit(2);
            });
            let loaded = if path.ends_with(".snap") {
                deco::graph::io::read_snapshot_file(&path).map_err(|e| e.to_string())
            } else {
                deco::graph::io::read_edge_list_file(&path).map_err(|e| e.to_string())
            };
            return Some(loaded.unwrap_or_else(|e| {
                eprintln!("could not load graph from {path}: {e}");
                std::process::exit(2);
            }));
        }
    }
    None
}
