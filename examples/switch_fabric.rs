//! Crossbar switch scheduling: an input-queued switch forwards packets from
//! input ports to output ports; in each cell time, a crossbar connects each
//! input to at most one output. Decomposing the demand (a bipartite graph)
//! into matchings = edge-coloring it; the number of colors is the number of
//! cell times needed to drain the demand.
//!
//! Run with: `cargo run --release --example switch_fabric` (add
//! `-- --small` for a CI-sized switch); the engine follows the
//! `DECO_ENGINE_*` environment. With `-- --serve tcp:host:port` the
//! decomposition is computed by a running `deco-serve` daemon instead —
//! same matchings, same verification, solved on the other side of a
//! socket.

use deco::core_alg::solver::{solve_two_delta_minus_one, SolverConfig};
use deco::graph::generators;

#[path = "util/mod.rs"]
mod util;
use util::{runtime_or_exit, serve_addr, small, solve_via_daemon};

fn main() {
    // 24×24 switch; each input has packets for 6 distinct outputs
    // (8×8 with 3 outputs under --small).
    let (inputs, outputs, load) = if small() {
        (8usize, 8usize, 3usize)
    } else {
        (24, 24, 6)
    };
    let demand = generators::random_bipartite_left_regular(inputs, outputs, load, 7);
    let ids: Vec<u64> = (1..=demand.num_nodes() as u64).collect();
    println!(
        "switch demand: {}x{} ports, {} packets, max port load Δ = {}",
        inputs,
        outputs,
        demand.num_edges(),
        demand.max_degree()
    );

    let colors = match serve_addr() {
        Some(addr) => solve_via_daemon(&addr, &demand),
        None => {
            let rt = runtime_or_exit();
            solve_two_delta_minus_one(&demand, &ids, SolverConfig::default(), &rt)
                .expect("solver succeeds")
                .colors
        }
    };
    let cells = colors.max_color().map_or(0, |c| c + 1) as usize;
    println!(
        "schedule: {} cell times (edge coloring bound 2Δ−1 = {}; Kőnig/Vizing \
         optimum for bipartite is Δ = {})",
        cells,
        2 * demand.max_degree() - 1,
        demand.max_degree()
    );

    // Each color class is a matching = one crossbar configuration.
    for cell in 0..cells.min(4) {
        let matching: Vec<String> = demand
            .edges()
            .filter(|&e| colors.get(e) == Some(cell as u32))
            .map(|e| {
                let [i, o] = demand.endpoints(e);
                format!("{}→{}", i.0, o.0 - inputs as u32)
            })
            .collect();
        println!(
            "  cell {cell}: {} transfers: {}",
            matching.len(),
            matching.join(" ")
        );
    }
    if cells > 4 {
        println!("  … {} more cells", cells - 4);
    }

    // Verify every color class is a matching (no port used twice).
    for v in demand.nodes() {
        let mut seen = std::collections::HashSet::new();
        for e in demand.incident_edges(v) {
            assert!(seen.insert(colors.get(e).expect("complete")));
        }
    }
    println!("all {cells} crossbar configurations verified conflict-free");
}
