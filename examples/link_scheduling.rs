//! Wireless link scheduling (TDMA): the classic application behind
//! distributed edge coloring. Radio links that share an endpoint cannot
//! transmit in the same time slot; an edge coloring with 2Δ−1 colors is a
//! collision-free schedule of 2Δ−1 slots, computed *by the network itself*
//! with only local communication.
//!
//! Run with: `cargo run --release --example link_scheduling` (add
//! `-- --small` for a CI-sized mesh); the engine follows the
//! `DECO_ENGINE_*` environment. With `-- --serve tcp:host:port` the
//! schedule is computed by a running `deco-serve` daemon instead — same
//! coloring, same verification, the solve just happens on the other
//! side of a socket.

use deco::core_alg::solver::{solve_two_delta_minus_one, SolverConfig};
use deco::graph::{generators, EdgeId};

#[path = "util/mod.rs"]
mod util;
use util::{runtime_or_exit, serve_addr, small, solve_via_daemon};

fn main() {
    // A mesh network: nodes on a torus (each radio reaches 4 neighbors)
    // plus some long-range shortcut links.
    let side = if small() { 6 } else { 12 };
    let torus = generators::torus(side, side);
    let mut builder = deco::graph::GraphBuilder::new(torus.num_nodes());
    for e in torus.edges() {
        let [u, v] = torus.endpoints(e);
        builder.add_edge(u, v);
    }
    // Shortcuts: node i to node (i*37+11) mod n, skipping duplicates/loops.
    let n = torus.num_nodes();
    for i in (0..n).step_by(9) {
        let j = (i * 37 + 11) % n;
        if i != j
            && torus
                .edge_between(deco::graph::NodeId::from(i), deco::graph::NodeId::from(j))
                .is_none()
        {
            builder.add_edge(deco::graph::NodeId::from(i), deco::graph::NodeId::from(j));
        }
    }
    let net = builder.build().expect("mesh is simple");
    let ids: Vec<u64> = (1..=net.num_nodes() as u64).collect();
    println!("mesh network: {net}");

    let colors = match serve_addr() {
        Some(addr) => solve_via_daemon(&addr, &net),
        None => {
            let rt = runtime_or_exit();
            solve_two_delta_minus_one(&net, &ids, SolverConfig::default(), &rt)
                .expect("solver succeeds")
                .colors
        }
    };
    let slots = colors.max_color().map_or(0, |c| c + 1);
    println!(
        "TDMA schedule: {} links in {} slots (bound 2Δ−1 = {})",
        net.num_edges(),
        slots,
        2 * net.max_degree() - 1
    );

    // Per-slot utilization: how many links transmit simultaneously.
    let mut per_slot = vec![0usize; slots as usize];
    for e in net.edges() {
        per_slot[colors.get(e).expect("complete") as usize] += 1;
    }
    println!("slot utilization (links per slot):");
    for (slot, count) in per_slot.iter().enumerate() {
        println!(
            "  slot {slot:2}: {count:3} links {}",
            "#".repeat(*count / 2)
        );
    }

    // Sanity: no node transmits twice in a slot.
    for v in net.nodes() {
        let mut seen = std::collections::HashSet::new();
        for e in net.incident_edges(v) {
            assert!(
                seen.insert(colors.get(e).expect("complete")),
                "collision at node {v}"
            );
        }
    }
    // And the schedule length is as promised.
    let first_link = EdgeId(0);
    println!(
        "example: link {first_link} ({} -- {}) transmits in slot {}",
        net.endpoints(first_link)[0],
        net.endpoints(first_link)[1],
        colors.get(first_link).expect("complete")
    );
    println!("schedule verified: collision-free");
}
