//! The (deg(e)+1)-list generalization: heterogeneous per-edge constraints.
//! Here, links in a radio network each support only a subset of frequency
//! channels (hardware bands, regulatory masks); as long as every link offers
//! deg(e)+1 channels, the solver finds a conflict-free assignment *from each
//! link's own list* — the problem the paper actually solves (Theorem 4.1 is
//! stated for lists, not just the uniform 2Δ−1 palette).
//!
//! Run with: `cargo run --release --example list_constraints` (add
//! `-- --small` for a CI-sized network); the engine follows the
//! `DECO_ENGINE_*` environment.

use deco::core_alg::instance;
use deco::core_alg::solver::{solve_pipeline, SolverConfig};
use deco::graph::generators;
use rand::prelude::*;
use rand::rngs::StdRng;

#[path = "util/mod.rs"]
mod util;
use util::{runtime_or_exit, small};

fn main() {
    let rt = runtime_or_exit();
    let n = if small() { 80 } else { 300 };
    let g = generators::power_law(n, 2.5, 24.0, 3);
    let ids: Vec<u64> = (1..=g.num_nodes() as u64).collect();
    println!("radio network: {g}");

    // 64 channels total; each link e draws a random allowed set of exactly
    // deg(e)+1 channels, biased to its own spectral "band" — heterogeneous
    // and adversarially tight (one channel of slack).
    let channels: u32 = 2 * g.max_edge_degree() as u32 + 8;
    let mut rng = StdRng::seed_from_u64(99);
    let lists: Vec<Vec<u32>> = g
        .edges()
        .map(|e| {
            let need = g.edge_degree(e) + 1;
            let band = rng.gen_range(0..4u32);
            let mut pool: Vec<u32> = (0..channels)
                .filter(|c| c % 4 == band || rng.gen_bool(0.3))
                .collect();
            pool.shuffle(&mut rng);
            while pool.len() < need {
                let extra = rng.gen_range(0..channels);
                if !pool.contains(&extra) {
                    pool.push(extra);
                }
            }
            pool.truncate(need);
            pool
        })
        .collect();
    let avg_list: f64 = lists.iter().map(Vec::len).sum::<usize>() as f64 / lists.len() as f64;
    println!(
        "channels: {channels}; per-link allowed sets of exactly deg(e)+1 channels \
         (avg {avg_list:.1})"
    );

    let inst = instance::ListInstance::new(
        g.clone(),
        lists
            .iter()
            .cloned()
            .map(deco::core_alg::ColorList::new)
            .collect(),
        channels,
    )
    .expect("lists are (deg+1)-feasible by construction");

    let result =
        solve_pipeline(&g, inst, &ids, SolverConfig::default(), &rt).expect("solver succeeds");
    println!(
        "assigned channels to {} links in {} adaptive rounds; {} distinct channels used",
        g.num_edges(),
        result.cost.actual_rounds(),
        result.colors.distinct_colors()
    );

    // Verify every link's channel is in its own allowed set.
    for e in g.edges() {
        let c = result.colors.get(e).expect("complete");
        assert!(
            lists[e.index()].contains(&c),
            "link {e} assigned a disallowed channel"
        );
    }
    println!("all channel assignments respect the per-link allowed sets");
}
