//! # deco — distributed edge coloring, quasi-polylogarithmic in Δ
//!
//! Facade over the workspace crates reproducing Balliu–Kuhn–Olivetti
//! (PODC 2020):
//!
//! * [`graph`] — CSR graphs, line graphs, seeded generators, colorings,
//!   and [`MutableGraph`] for edge churn with CSR snapshots on demand.
//! * [`local`] — the LOCAL model: networks, the serial reference runner,
//!   the [`local::Executor`] contract.
//! * [`engine`] — the high-throughput round-execution engine (flat
//!   mailboxes, deterministic multi-threading, scenario matrix), the
//!   barrier-free [`engine::AsyncExecutor`] with component-local round
//!   clocks, and the sharded engine.
//! * [`runtime`] — the unified [`Runtime`] facade: one handle over every
//!   engine ([`Engine`] is serial / barrier / async / sharded behind one
//!   `match`), built explicitly via [`RuntimeBuilder`] or from the
//!   `DECO_ENGINE_*` environment via [`Runtime::from_env`].
//! * [`algos`] — Linial, Cole–Vishkin, class elimination, Luby, greedy;
//!   every protocol entry point takes `&Runtime`.
//! * [`core_alg`] — the Theorem 4.1 solver; pipeline entry points return
//!   a structured [`core_alg::RunReport`], and [`Session`] keeps a live
//!   coloring under [`EdgeUpdate`] churn via incremental repair.
//! * [`serve`] — coloring as a service: the `deco-serve` daemon speaks a
//!   newline-delimited line-JSON protocol over TCP, Unix sockets, or
//!   in-process pipes ([`serve::Request`] covers one-shot solves, churn
//!   sessions, status, and drain-on-shutdown), with [`serve::Client`] as
//!   the typed companion.
//! * [`trace`] — zero-cost-when-off tracing and metrics shared by every
//!   engine: set `DECO_TRACE=jsonl` (or `ring`) and `RunReport.metrics`
//!   carries a per-phase [`trace::MetricsReport`]; unset, the
//!   instrumentation is a single relaxed atomic load.
//!
//! ## Quickstart
//!
//! A [`Session`] holds a live coloring over a mutable graph: open it once
//! (the full pipeline runs, on whichever engine the runtime carries), then
//! apply edge updates — each repaired incrementally in O(deg(e)) instead of
//! a pipeline re-run. The one-shot solve is the zero-update special case.
//!
//! ```
//! use deco::core_alg::solver::SolverConfig;
//! use deco::graph::generators;
//! use deco::{EdgeUpdate, Runtime, Session};
//!
//! // Honors DECO_ENGINE_THREADS / DECO_ENGINE_ASYNC / DECO_ENGINE_SHARDS /
//! // DECO_SHARD_TRANSPORT; a clean environment means the serial reference
//! // engine. Malformed variables are structured errors, never silent
//! // fallbacks.
//! let rt = Runtime::from_env().expect("engine environment parses");
//!
//! let g = generators::random_regular(40, 6, 7);
//! let ids: Vec<u64> = (1..=40).collect();
//! let mut session = Session::open(&g, &ids, SolverConfig::default(), &rt)
//!     .expect("solver succeeds");
//!
//! // One edge arrives. The repair is greedy and local: exactly one edge
//! // recolored, the 2Δ−1 palette bound intact — no pipeline re-run.
//! let update = session
//!     .apply(EdgeUpdate::insert(0usize, 2usize))
//!     .expect("repair succeeds");
//! assert_eq!(update.recolored, 1);
//! assert!(update.palette_max <= update.palette_bound);
//! println!(
//!     "update {}: {} recolored, {} messages, palette {}/{}, {:?}",
//!     update.update, update.recolored, update.messages,
//!     update.palette_max, update.palette_bound, update.wall_time,
//! );
//!
//! // The session report covers the base solve plus every repair, with the
//! // same invariants the one-shot report has.
//! let report = session.report();
//! assert!(report.colors.is_complete());
//! assert_eq!(report.rounds, report.x_rounds + report.cost.actual_rounds());
//! assert!(report.messages > 0);
//! println!(
//!     "{}: {} rounds, {} messages, {:?}",
//!     report.engine_descriptor, report.rounds, report.messages, report.wall_time,
//! );
//! ```

pub use deco_algos as algos;
pub use deco_core as core_alg;
pub use deco_engine as engine;
pub use deco_graph as graph;
pub use deco_local as local;
pub use deco_runtime as runtime;
pub use deco_serve as serve;
pub use deco_trace as trace;

pub use deco_core::{Session, SessionError, UpdateReport};
pub use deco_graph::{EdgeUpdate, MutableGraph, MutateError};
pub use deco_runtime::{Engine, Runtime, RuntimeBuilder};
