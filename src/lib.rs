//! # deco — distributed edge coloring, quasi-polylogarithmic in Δ
//!
//! Facade over the workspace crates reproducing Balliu–Kuhn–Olivetti
//! (PODC 2020):
//!
//! * [`graph`] — CSR graphs, line graphs, seeded generators, colorings.
//! * [`local`] — the LOCAL model: networks, the serial reference runner,
//!   the [`local::Executor`] contract.
//! * [`engine`] — the high-throughput round-execution engine (flat
//!   mailboxes, deterministic multi-threading, scenario matrix) and the
//!   barrier-free [`engine::AsyncExecutor`] with component-local round
//!   clocks.
//! * [`algos`] — Linial, Cole–Vishkin, class elimination, Luby, greedy.
//! * [`core_alg`] — the Theorem 4.1 solver.

pub use deco_algos as algos;
pub use deco_core as core_alg;
pub use deco_engine as engine;
pub use deco_graph as graph;
pub use deco_local as local;
