//! # deco — distributed edge coloring, quasi-polylogarithmic in Δ
//!
//! Facade over the workspace crates reproducing Balliu–Kuhn–Olivetti
//! (PODC 2020):
//!
//! * [`graph`] — CSR graphs, line graphs, seeded generators, colorings.
//! * [`local`] — the LOCAL model: networks, the serial reference runner,
//!   the [`local::Executor`] contract.
//! * [`engine`] — the high-throughput round-execution engine (flat
//!   mailboxes, deterministic multi-threading, scenario matrix), the
//!   barrier-free [`engine::AsyncExecutor`] with component-local round
//!   clocks, and the sharded engine.
//! * [`runtime`] — the unified [`Runtime`] facade: one handle over every
//!   engine ([`Engine`] is serial / barrier / async / sharded behind one
//!   `match`), built explicitly via [`RuntimeBuilder`] or from the
//!   `DECO_ENGINE_*` environment via [`Runtime::from_env`].
//! * [`algos`] — Linial, Cole–Vishkin, class elimination, Luby, greedy;
//!   every protocol entry point takes `&Runtime`.
//! * [`core_alg`] — the Theorem 4.1 solver; pipeline entry points return
//!   a structured [`core_alg::RunReport`].
//! * [`trace`] — zero-cost-when-off tracing and metrics shared by every
//!   engine: set `DECO_TRACE=jsonl` (or `ring`) and `RunReport.metrics`
//!   carries a per-phase [`trace::MetricsReport`]; unset, the
//!   instrumentation is a single relaxed atomic load.
//!
//! ## Quickstart
//!
//! One runtime value selects the engine for the whole pipeline; the
//! environment (or the builder) decides which engine that is, and the
//! result is bit-identical either way:
//!
//! ```
//! use deco::core_alg::solver::{solve_two_delta_minus_one, SolverConfig};
//! use deco::graph::generators;
//! use deco::Runtime;
//!
//! // Honors DECO_ENGINE_THREADS / DECO_ENGINE_ASYNC / DECO_ENGINE_SHARDS /
//! // DECO_SHARD_TRANSPORT; a clean environment means the serial reference
//! // engine. Malformed variables are structured errors, never silent
//! // fallbacks.
//! let rt = Runtime::from_env().expect("engine environment parses");
//!
//! let g = generators::random_regular(40, 6, 7);
//! let ids: Vec<u64> = (1..=40).collect();
//! let report = solve_two_delta_minus_one(&g, &ids, SolverConfig::default(), &rt)
//!     .expect("solver succeeds");
//!
//! // The structured report: coloring + totals + attribution, no
//! // re-deriving stats by hand.
//! assert!(report.colors.is_complete());
//! assert!(report.colors.distinct_colors() <= 2 * 6 - 1);
//! assert_eq!(report.rounds, report.x_rounds + report.cost.actual_rounds());
//! assert!(report.messages > 0);
//! println!(
//!     "{}: {} rounds, {} messages, {:?}",
//!     report.engine_descriptor, report.rounds, report.messages, report.wall_time,
//! );
//!
//! // An explicit engine is one builder away, and observationally
//! // identical (everything except wall time).
//! let rt2 = Runtime::builder().threads(2).build();
//! assert_eq!(rt2.descriptor(), "barrier(threads=2)");
//! let report2 = solve_two_delta_minus_one(&g, &ids, SolverConfig::default(), &rt2)
//!     .expect("solver succeeds");
//! assert_eq!(report.colors, report2.colors);
//! assert_eq!(report.rounds, report2.rounds);
//! assert_eq!(report.messages, report2.messages);
//! assert_eq!(report.solve_stats, report2.solve_stats);
//! ```

pub use deco_algos as algos;
pub use deco_core as core_alg;
pub use deco_engine as engine;
pub use deco_graph as graph;
pub use deco_local as local;
pub use deco_runtime as runtime;
pub use deco_trace as trace;

pub use deco_runtime::{Engine, Runtime, RuntimeBuilder};
