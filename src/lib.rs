pub use deco_core as core_alg; pub use deco_graph as graph; pub use deco_local as local; pub use deco_algos as algos;
